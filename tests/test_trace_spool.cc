/**
 * @file
 * Tests for the asynchronous trace spool and the javelin-trace-v1
 * binary format: bit-identical spooled-vs-in-memory round trips
 * (differential fuzz across buffer sizes, writer schedules, and
 * backends), torn-tail recovery, mid-file corruption refusal,
 * fault-injected crashes, and the Daq/HpmSampler spool plumbing.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/component_port.hh"
#include "core/daq.hh"
#include "core/hpm_sampler.hh"
#include "core/trace_spool.hh"
#include "sim/platform.hh"

using namespace javelin;
using namespace javelin::core;
using sim::System;

namespace {

namespace fs = std::filesystem;

fs::path
scratchDir(const std::string &name)
{
    const fs::path dir =
        fs::temp_directory_path() / ("javelin_spool_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/**
 * Deterministic synthetic samples. The power shapes are
 * non-terminating binary fractions, so equality below is only
 * satisfiable by a bit-exact round trip.
 */
PowerSample
synthPower(std::uint64_t i)
{
    PowerSample s;
    s.tick = (i + 1) * 40 * kTicksPerMicro;
    s.windowTicks = i % 37 == 0 ? 0 : 40 * kTicksPerMicro;
    s.cpuWatts = 2.0 + static_cast<double>(i % 997) / 997.0;
    s.memWatts = 0.3 + static_cast<double>(i % 101) / 303.0;
    s.component = static_cast<ComponentId>(i % kNumComponents);
    return s;
}

PerfSample
synthPerf(std::uint64_t i)
{
    PerfSample s;
    s.tick = (i + 1) * kTicksPerMilli;
    s.component = static_cast<ComponentId>((i * 3) % kNumComponents);
    s.delta.cycles = 1000 + i % 400;
    s.delta.instructions = 700 + i % 350;
    s.delta.stallCycles = i % 90;
    s.delta.branches = 120 + i % 60;
    s.delta.branchMispredicts = i % 7;
    s.delta.l1iAccesses = 650 + i % 100;
    s.delta.l1iMisses = i % 11;
    s.delta.l1dAccesses = 300 + i % 200;
    s.delta.l1dMisses = i % 23;
    s.delta.l2Accesses = i % 34;
    s.delta.l2Misses = i % 5;
    s.delta.l2Probes = i % 3;
    s.delta.dramAccesses = i % 5;
    s.delta.dramWritebacks = i % 2;
    return s;
}

void
expectPowerEq(const PowerTrace &a, const PowerTrace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].tick, b[i].tick) << "sample " << i;
        ASSERT_EQ(a[i].windowTicks, b[i].windowTicks) << "sample " << i;
        // Exact (bit-identical) double comparison, deliberately.
        ASSERT_EQ(a[i].cpuWatts, b[i].cpuWatts) << "sample " << i;
        ASSERT_EQ(a[i].memWatts, b[i].memWatts) << "sample " << i;
        ASSERT_EQ(a[i].component, b[i].component) << "sample " << i;
    }
}

void
expectPerfEq(const PerfTrace &a, const PerfTrace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].tick, b[i].tick) << "sample " << i;
        ASSERT_EQ(a[i].component, b[i].component) << "sample " << i;
        const auto &x = a[i].delta;
        const auto &y = b[i].delta;
        ASSERT_EQ(x.cycles, y.cycles) << "sample " << i;
        ASSERT_EQ(x.instructions, y.instructions) << "sample " << i;
        ASSERT_EQ(x.stallCycles, y.stallCycles) << "sample " << i;
        ASSERT_EQ(x.branches, y.branches) << "sample " << i;
        ASSERT_EQ(x.branchMispredicts, y.branchMispredicts)
            << "sample " << i;
        ASSERT_EQ(x.l1iAccesses, y.l1iAccesses) << "sample " << i;
        ASSERT_EQ(x.l1iMisses, y.l1iMisses) << "sample " << i;
        ASSERT_EQ(x.l1dAccesses, y.l1dAccesses) << "sample " << i;
        ASSERT_EQ(x.l1dMisses, y.l1dMisses) << "sample " << i;
        ASSERT_EQ(x.l2Accesses, y.l2Accesses) << "sample " << i;
        ASSERT_EQ(x.l2Misses, y.l2Misses) << "sample " << i;
        ASSERT_EQ(x.l2Probes, y.l2Probes) << "sample " << i;
        ASSERT_EQ(x.dramAccesses, y.dramAccesses) << "sample " << i;
        ASSERT_EQ(x.dramWritebacks, y.dramWritebacks)
            << "sample " << i;
    }
}

/** Spool `count` synthetic power samples and return the oracle. */
PowerTrace
spoolPower(const TraceSpool::Config &cfg, std::uint64_t count)
{
    PowerTrace oracle;
    oracle.reserve(count);
    TraceSpool spool(cfg);
    for (std::uint64_t i = 0; i < count; ++i) {
        const PowerSample s = synthPower(i);
        spool.append(s);
        oracle.push_back(s);
    }
    spool.close();
    return oracle;
}

std::vector<char>
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
writeFile(const fs::path &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST(TraceSpool, PowerRoundTripIsBitIdentical)
{
    const fs::path dir = scratchDir("power_rt");
    TraceSpool::Config cfg;
    cfg.path = (dir / "t.jtrc").string();
    const PowerTrace oracle = spoolPower(cfg, 10000);

    TraceReader reader(cfg.path);
    EXPECT_EQ(reader.kind(), tracefmt::RecordKind::Power);
    EXPECT_FALSE(reader.torn());
    EXPECT_EQ(reader.recordCount(), oracle.size());
    expectPowerEq(reader.readPower(), oracle);
}

TEST(TraceSpool, PerfRoundTripIsBitIdentical)
{
    const fs::path dir = scratchDir("perf_rt");
    TraceSpool::Config cfg;
    cfg.path = (dir / "t.jtrc").string();
    cfg.kind = tracefmt::RecordKind::Perf;
    cfg.bufferBytes = 1 << 14;

    PerfTrace oracle;
    {
        TraceSpool spool(cfg);
        for (std::uint64_t i = 0; i < 20000; ++i) {
            const PerfSample s = synthPerf(i);
            spool.append(s);
            oracle.push_back(s);
        }
        spool.close();
    }
    TraceReader reader(cfg.path);
    EXPECT_EQ(reader.kind(), tracefmt::RecordKind::Perf);
    expectPerfEq(reader.readPerf(), oracle);
}

/**
 * The differential fuzz of the acceptance criteria: one synthetic
 * stream (> 1M samples over the matrix) spooled under every
 * combination of block size (including the minimum, one record per
 * block) and writer schedule (a slow writer forces the appender into
 * the backpressure wait), plus the io_uring backend where the host
 * supports it. Every decode must be bit-identical to the in-memory
 * oracle.
 */
TEST(TraceSpool, DifferentialFuzzAcrossBuffersSchedulesBackends)
{
    const fs::path dir = scratchDir("fuzz");
    struct Case
    {
        std::size_t bufferBytes;
        unsigned writerDelayMicros;
        std::uint64_t samples;
    };
    const Case cases[] = {
        {1, 0, 20000},        // clamped to one record per block
        {256, 50, 20000},     // tiny blocks + slow writer
        {1 << 10, 0, 50000},  //
        {1 << 10, 20, 50000}, // backpressure at 1 KiB blocks
        {1 << 16, 0, 400000}, //
        {1 << 20, 0, 600000}, // default-sized blocks, bulk volume
    };
    std::size_t n = 0;
    std::uint64_t total = 0;
    for (const auto &c : cases) {
        TraceSpool::Config cfg;
        cfg.path = (dir / ("f" + std::to_string(n++))).string();
        cfg.bufferBytes = c.bufferBytes;
        cfg.writerDelayMicros = c.writerDelayMicros;
        const PowerTrace oracle = spoolPower(cfg, c.samples);
        total += c.samples;
        TraceReader reader(cfg.path);
        ASSERT_FALSE(reader.torn());
        expectPowerEq(reader.readPower(), oracle);
    }
    EXPECT_GE(total, 1000000u) << "fuzz volume fell below the 1M floor";

    if (TraceSpool::ioUringAvailable()) {
        // Same stream, both backends, same block size: the files must
        // be byte-identical, not merely decode-identical.
        TraceSpool::Config cfg;
        cfg.path = (dir / "pwrite").string();
        cfg.bufferBytes = 1 << 14;
        spoolPower(cfg, 100000);
        cfg.path = (dir / "uring").string();
        cfg.backend = TraceSpool::Backend::IoUring;
        spoolPower(cfg, 100000);
        EXPECT_EQ(readFile(dir / "pwrite"), readFile(dir / "uring"));
    }
}

TEST(TraceSpool, RangeReadsMatchFilteredFullRead)
{
    const fs::path dir = scratchDir("range");
    TraceSpool::Config cfg;
    cfg.path = (dir / "t.jtrc").string();
    cfg.bufferBytes = 1 << 12;
    const PowerTrace oracle = spoolPower(cfg, 30000);

    TraceReader reader(cfg.path);
    ASSERT_GT(reader.blocks().size(), 4u);
    const Tick from = oracle[10000].tick;
    const Tick to = oracle[12345].tick;
    PowerTrace expected;
    for (const auto &s : oracle)
        if (s.tick >= from && s.tick <= to)
            expected.push_back(s);
    expectPowerEq(reader.readPowerRange(from, to), expected);
    // Degenerate ranges.
    EXPECT_TRUE(reader.readPowerRange(1, 2).empty());
    expectPowerEq(reader.readPowerRange(0, ~Tick(0)), oracle);
}

TEST(TraceSpool, TornTailIsDroppedAtEveryTruncationPoint)
{
    const fs::path dir = scratchDir("torn");
    TraceSpool::Config cfg;
    cfg.path = (dir / "t.jtrc").string();
    cfg.bufferBytes = 1 << 12;
    const PowerTrace oracle = spoolPower(cfg, 5000);
    const std::vector<char> whole = readFile(cfg.path);

    std::vector<TraceReader::BlockInfo> blocks;
    {
        TraceReader reader(cfg.path);
        blocks = reader.blocks();
        ASSERT_GT(blocks.size(), 3u);
    }

    // Truncate inside the final block at several depths: header
    // prefix, payload, and mid-footer. The reader must recover
    // exactly the records of the preceding intact blocks.
    const auto &last = blocks.back();
    std::uint64_t intactRecords = 0;
    for (std::size_t b = 0; b + 1 < blocks.size(); ++b)
        intactRecords += blocks[b].recordCount;
    const std::uint64_t tailLen = whole.size() - last.offset;
    for (const std::uint64_t cut :
         {std::uint64_t(1), std::uint64_t(7), std::uint64_t(8),
          std::uint64_t(9), tailLen / 2, tailLen - 1}) {
        const fs::path cutPath = dir / ("cut" + std::to_string(cut));
        std::vector<char> bytes(whole.begin(),
                                whole.begin() +
                                    static_cast<long>(last.offset +
                                                      cut));
        writeFile(cutPath, bytes);
        TraceReader reader(cutPath.string());
        EXPECT_TRUE(reader.torn()) << "cut " << cut;
        EXPECT_EQ(reader.recordCount(), intactRecords)
            << "cut " << cut;
        EXPECT_EQ(reader.intactBytes(), last.offset) << "cut " << cut;
        PowerTrace expected(oracle.begin(),
                            oracle.begin() +
                                static_cast<long>(intactRecords));
        expectPowerEq(reader.readPower(), expected);
    }

    // Truncation exactly at a block boundary is not a tear at all.
    {
        const fs::path cleanPath = dir / "clean_cut";
        std::vector<char> bytes(whole.begin(),
                                whole.begin() +
                                    static_cast<long>(last.offset));
        writeFile(cleanPath, bytes);
        TraceReader reader(cleanPath.string());
        EXPECT_FALSE(reader.torn());
        EXPECT_EQ(reader.recordCount(), intactRecords);
    }
}

TEST(TraceSpool, MidFileCorruptionIsRefused)
{
    const fs::path dir = scratchDir("corrupt");
    TraceSpool::Config cfg;
    cfg.path = (dir / "t.jtrc").string();
    cfg.bufferBytes = 1 << 12;
    spoolPower(cfg, 5000);
    const std::vector<char> whole = readFile(cfg.path);
    std::vector<TraceReader::BlockInfo> blocks;
    {
        TraceReader reader(cfg.path);
        blocks = reader.blocks();
        ASSERT_GT(blocks.size(), 3u);
    }

    // A flipped byte in an early block's footer: structural failure
    // before the tail, caught while indexing.
    {
        std::vector<char> bytes = whole;
        bytes[blocks[1].offset + tracefmt::kBlockHeaderBytes +
              blocks[1].recordCount * tracefmt::kPowerRecordBytes] ^=
            0x5A;
        const fs::path p = dir / "bad_footer";
        writeFile(p, bytes);
        EXPECT_EXIT(TraceReader reader(p.string()),
                    testing::ExitedWithCode(1), "block");
    }

    // A flipped byte inside an early payload: footer shape is fine,
    // so indexing succeeds, but decoding trips the payload CRC.
    {
        std::vector<char> bytes = whole;
        bytes[blocks[1].offset + tracefmt::kBlockHeaderBytes + 5] ^=
            0x5A;
        const fs::path p = dir / "bad_payload";
        writeFile(p, bytes);
        EXPECT_EXIT(
            {
                TraceReader reader(p.string());
                reader.readPower();
            },
            testing::ExitedWithCode(1), "payload CRC");
    }

    // A scrambled block magic is corruption wherever it appears.
    {
        std::vector<char> bytes = whole;
        bytes[blocks[1].offset] ^= 0xFF;
        const fs::path p = dir / "bad_magic";
        writeFile(p, bytes);
        EXPECT_EXIT(TraceReader reader(p.string()),
                    testing::ExitedWithCode(1), "bad magic");
    }

    // A damaged file header never reads as an empty trace.
    {
        std::vector<char> bytes = whole;
        bytes[1] ^= 0xFF;
        const fs::path p = dir / "bad_header";
        writeFile(p, bytes);
        EXPECT_EXIT(TraceReader reader(p.string()),
                    testing::ExitedWithCode(1), "magic");
    }
}

TEST(TraceSpool, CrashInjectionTearsTheFileMidBlock)
{
    const fs::path dir = scratchDir("crash");
    TraceSpool::Config cfg;
    cfg.path = (dir / "t.jtrc").string();
    cfg.bufferBytes = 1 << 12;
    cfg.crashAfterBlocks = 3;

    EXPECT_EXIT(spoolPower(cfg, 5000),
                testing::KilledBySignal(SIGKILL), "");

    // The death test ran in a child; the wreckage is on disk: two
    // intact blocks and a half-written third.
    TraceReader reader(cfg.path);
    EXPECT_TRUE(reader.torn());
    EXPECT_EQ(reader.blocks().size(), 2u);
    std::uint64_t intactRecords = reader.recordCount();
    ASSERT_GT(intactRecords, 0u);
    PowerTrace expected;
    for (std::uint64_t i = 0; i < intactRecords; ++i)
        expected.push_back(synthPower(i));
    expectPowerEq(reader.readPower(), expected);
}

TEST(TraceSpool, DaqTeeModeSpoolsBitIdenticalTrace)
{
    const fs::path dir = scratchDir("daq_tee");
    auto spec = sim::p6Spec();
    TraceSpool::Config sp;
    sp.path = (dir / "power.jtrc").string();
    sp.bufferBytes = 1 << 12;
    TraceSpool spool(sp);

    System sys(spec);
    core::ComponentPort port(sys);
    Daq::Config cfg;
    cfg.spool = &spool;
    Daq daq(sys, port, cfg);
    std::uint64_t i = 0;
    while (sys.cpu().now() < 20 * kTicksPerMilli) {
        if (++i % 5 == 0)
            port.rawWrite(static_cast<ComponentId>(i % kNumComponents));
        sys.cpu().execute(200, 0x1000 + (i % 64) * 64, 64);
        sys.poll();
    }
    spool.close();

    ASSERT_FALSE(daq.trace().empty());
    EXPECT_EQ(daq.samplesTaken(), daq.trace().size());
    TraceReader reader(sp.path);
    expectPowerEq(reader.readPower(), daq.trace());
}

TEST(TraceSpool, DaqSpoolOnlyModeMatchesInMemoryMeasurement)
{
    const fs::path dir = scratchDir("daq_only");
    const auto drive = [](System &sys, core::ComponentPort &port) {
        std::uint64_t i = 0;
        while (sys.cpu().now() < 20 * kTicksPerMilli) {
            if (++i % 7 == 0)
                port.rawWrite(
                    static_cast<ComponentId>(i % kNumComponents));
            sys.cpu().execute(150, 0x2000 + (i % 32) * 64, 64);
            sys.poll();
        }
    };

    // Reference run: plain in-memory capture.
    PowerTrace memTrace;
    double memCpuJ = 0, memMemJ = 0;
    {
        System sys(sim::p6Spec());
        core::ComponentPort port(sys);
        Daq daq(sys, port);
        drive(sys, port);
        memTrace = daq.trace();
        memCpuJ = daq.measuredCpuJoules();
        memMemJ = daq.measuredMemJoules();
    }

    // Spool-only run: keepInMemory off; RSS-flat path.
    {
        TraceSpool::Config sp;
        sp.path = (dir / "power.jtrc").string();
        TraceSpool spool(sp);
        System sys(sim::p6Spec());
        core::ComponentPort port(sys);
        Daq::Config cfg;
        cfg.spool = &spool;
        cfg.keepInMemory = false;
        Daq daq(sys, port, cfg);
        drive(sys, port);
        spool.close();

        EXPECT_TRUE(daq.trace().empty());
        EXPECT_EQ(daq.samplesTaken(), memTrace.size());
        // Measured energy must be bit-identical between modes: the
        // spool-only running sums accumulate in integrateCpuJoules
        // order.
        EXPECT_EQ(daq.measuredCpuJoules(), memCpuJ);
        EXPECT_EQ(daq.measuredMemJoules(), memMemJ);
        TraceReader reader(sp.path);
        expectPowerEq(reader.readPower(), memTrace);
        EXPECT_EQ(integrateCpuJoules(reader.readPower()), memCpuJ);
    }
}

TEST(TraceSpool, HpmSamplerSpoolsBitIdenticalPerfTrace)
{
    const fs::path dir = scratchDir("hpm_tee");
    TraceSpool::Config sp;
    sp.path = (dir / "perf.jtrc").string();
    sp.kind = tracefmt::RecordKind::Perf;
    TraceSpool spool(sp);

    System sys(sim::p6Spec());
    core::ComponentPort port(sys);
    core::HpmSampler::Config cfg;
    cfg.period = kTicksPerMilli;
    cfg.spool = &spool;
    core::HpmSampler hpm(sys, port, cfg);
    std::uint64_t i = 0;
    while (sys.cpu().now() < 30 * kTicksPerMilli) {
        if (++i % 3 == 0)
            port.rawWrite(static_cast<ComponentId>(i % kNumComponents));
        sys.cpu().execute(400, 0x8000 + (i % 128) * 64, 64);
        sys.poll();
    }
    spool.close();

    ASSERT_FALSE(hpm.trace().empty());
    TraceReader reader(sp.path);
    EXPECT_EQ(reader.kind(), tracefmt::RecordKind::Perf);
    expectPerfEq(reader.readPerf(), hpm.trace());
}

TEST(TraceSpool, MismatchedRecordKindPanics)
{
    const fs::path dir = scratchDir("kind");
    TraceSpool::Config cfg;
    cfg.path = (dir / "t.jtrc").string();
    cfg.kind = tracefmt::RecordKind::Perf;
    TraceSpool spool(cfg);
    // Kind mismatch is an internal invariant violation: panic/abort.
    EXPECT_EXIT(spool.append(synthPower(0)),
                testing::KilledBySignal(SIGABRT), "power");
    spool.append(synthPerf(0));
    spool.close();
}
