/**
 * @file
 * Regression tests for two DAQ energy-integration bugs:
 *
 *  1. Samples used to be weighted by the nominal DAQ period when
 *     integrating energy, but a sample taken after the simulation
 *     polled late covers the whole gap and the catch-up samples behind
 *     it cover no time at all. Measured totals now integrate each
 *     sample over its actual window (PowerSample::windowTicks) and must
 *     reconcile with the power model / ground-truth accountant even on
 *     bursty workloads; the old period-weighted sum must not.
 *
 *  2. A Daq attached to a warm system used to leave its energy
 *     baseline at zero and attribute everything consumed before attach
 *     to the first sample window. The constructor now snapshots the
 *     cumulative energy counters.
 *
 *  3. The measured-energy integrals accumulated naively left-to-right
 *     in a plain double, so long traces with a large dynamic range
 *     drifted: once the running sum dwarfs a sample's contribution,
 *     every add sheds low-order bits in the same direction. The
 *     integrals now use compensated (Neumaier) summation
 *     (core::integrateCpuJoules / util/kahan.hh).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/attribution.hh"
#include "core/component_port.hh"
#include "core/daq.hh"
#include "sim/platform.hh"

using namespace javelin;
using core::ComponentId;
using core::ComponentPort;
using core::Daq;
using sim::System;

namespace {

sim::PlatformSpec
testSpec()
{
    auto spec = sim::p6Spec();
    spec.memory.l1i.sizeBytes = 4 * kKiB;
    spec.memory.l1d.sizeBytes = 4 * kKiB;
    spec.memory.l2->sizeBytes = 64 * kKiB;
    return spec;
}

/** Advance busy execution to `target` without polling the DAQ. */
void
burnWithoutPolling(System &sys, Tick target)
{
    while (sys.cpu().now() < target)
        sys.cpu().execute(50, 0x1000, 64);
}

} // namespace

TEST(DaqFixes, BurstyWindowsReconcileButPeriodWeightingDoesNot)
{
    System sys(testSpec());
    ComponentPort port(sys);
    Daq::Config cfg;
    cfg.period = 40 * kTicksPerMicro;
    Daq daq(sys, port, cfg);
    const Tick p = daq.period();

    // Alternate high-power bursts that overrun the sampling period
    // (polled only at the end, so the DAQ fires a catch-up burst) with
    // low-power idle stretches sampled on time. Power then correlates
    // with window length, which is exactly where period-weighted
    // integration goes wrong.
    for (int i = 0; i < 40; ++i) {
        burnWithoutPolling(sys, sys.cpu().now() + 5 * p / 2);
        sys.poll();
        sys.idleFor(5 * p / 2);
    }
    sys.syncPower();

    std::size_t catchUps = 0;
    std::size_t longWindows = 0;
    for (const auto &s : daq.trace()) {
        catchUps += s.windowTicks == 0;
        longWindows += s.windowTicks > p;
    }
    ASSERT_GT(catchUps, 0u);
    ASSERT_GT(longWindows, 0u);

    const double model = sys.cpuJoules();
    const double measured = daq.measuredCpuJoules();
    EXPECT_NEAR(measured, model, model * 0.02);
    EXPECT_NEAR(daq.measuredMemJoules(), sys.memoryJoules(),
                sys.memoryJoules() * 0.03);

    // The pre-fix integral: every sample weighted by the nominal
    // period. On this workload it misses by far more than the
    // reconciliation tolerance above.
    double naive = 0.0;
    for (const auto &s : daq.trace())
        naive += s.cpuWatts * ticksToSeconds(p);
    EXPECT_GT(std::abs(naive - model), model * 0.05);
}

TEST(DaqFixes, AttributionIntegratesActualWindows)
{
    System sys(testSpec());
    ComponentPort port(sys);
    Daq daq(sys, port);
    const Tick p = daq.period();

    for (int i = 0; i < 40; ++i) {
        burnWithoutPolling(sys, sys.cpu().now() + 5 * p / 2);
        sys.poll();
        sys.idleFor(5 * p / 2);
    }
    sys.syncPower();

    // attribute() must agree with the DAQ's own integral (same trace,
    // same actual-window weighting).
    const auto a = core::attribute(daq.trace(), {});
    EXPECT_NEAR(a.totalCpuJoules, daq.measuredCpuJoules(), 1e-9);
    EXPECT_NEAR(a.totalCpuJoules, sys.cpuJoules(),
                sys.cpuJoules() * 0.02);
    // Catch-up samples add trace shape but no seconds.
    Tick covered = 0;
    for (const auto &s : daq.trace())
        covered += s.windowTicks;
    EXPECT_NEAR(a.totalSeconds, ticksToSeconds(covered), 1e-12);
}

/**
 * Long-trace drift regression for the compensated integrals. One huge
 * sample (a pathological sense-channel glitch) pushes the running sum
 * far above the per-sample contributions, then a million ordinary
 * samples follow. Naive double accumulation then rounds every add in
 * the same direction and drifts; the compensated integral must stay
 * within a few ulps of the analytic total (which has a closed form
 * here precisely because every small term is the same double — even an
 * 80-bit accumulator drifts too much at this length to serve as the
 * oracle).
 */
TEST(DaqFixes, LongTraceIntegrationDoesNotDrift)
{
    const Tick w = 40 * kTicksPerMicro;
    core::PowerTrace trace;
    trace.reserve(1'000'001);
    trace.push_back({0, 2.5e8, 2.5e8, w, core::ComponentId::App});
    for (int i = 0; i < 1'000'000; ++i)
        trace.push_back(
            {Tick(i + 1) * w, 1e-3, 1e-3, w, core::ComponentId::App});

    double naive = 0.0;
    for (const auto &s : trace)
        naive += s.cpuWatts * ticksToSeconds(s.windowTicks);

    // Exact real-number sum of the double-valued terms, rounded twice:
    // big term + (identical small term scaled by the exact count).
    const double dt = ticksToSeconds(w);
    const double refD = 2.5e8 * dt + 1e6 * (1e-3 * dt);

    const double compensated = core::integrateCpuJoules(trace);
    EXPECT_EQ(core::integrateMemJoules(trace), compensated);

    const double compErr = std::abs(compensated - refD);
    const double naiveErr = std::abs(naive - refD);
    // ~1e4 J total: one ulp is ~1.8e-12 J. Compensated must be at
    // ulp scale; the naive loop drifts orders of magnitude past it.
    EXPECT_LT(compErr, 1e-11);
    EXPECT_GT(naiveErr, 1e-8);
    EXPECT_GT(naiveErr, 100.0 * std::max(compErr, 1e-13));
}

/**
 * Regression for the final-partial-window truncation: a run that ends
 * between sampling instants used to lose the in-progress window —
 * energy consumed after the last periodic sample never entered the
 * measured totals, so on ms-scale runs measured joules undercounted
 * the integrated energy by up to one window. Daq::stop() flushes the
 * partial window through the ordinary sample path; after it, measured
 * totals must reconcile with the power model at Neumaier epsilon, not
 * at percent scale.
 */
TEST(DaqFixes, StopFlushesFinalPartialWindow)
{
    System sys(testSpec());
    ComponentPort port(sys);
    Daq daq(sys, port);
    const Tick p = daq.period();

    // 20 on-schedule windows, then stop ~60% into the next one.
    while (sys.cpu().now() < 20 * p) {
        sys.cpu().execute(50, 0x1000, 64);
        sys.poll();
    }
    burnWithoutPolling(sys, sys.cpu().now() + (3 * p) / 5);
    sys.syncPower();
    const double model = sys.cpuJoules();
    const double modelMem = sys.memoryJoules();

    // Without the flush the in-progress window is simply dropped: the
    // truncated totals are visibly short of the integrated energy.
    const double truncated = daq.measuredCpuJoules();
    EXPECT_LT(truncated, model * 0.995);

    const auto samplesBefore = daq.samplesTaken();
    daq.stop();
    EXPECT_EQ(daq.samplesTaken(), samplesBefore + 1);
    EXPECT_NEAR(daq.measuredCpuJoules(), model, model * 1e-9);
    EXPECT_NEAR(daq.measuredMemJoules(), modelMem, modelMem * 1e-9);

    // Idempotent, and periodic firings after stop() are ignored: more
    // simulated time must not grow the trace or the totals.
    daq.stop();
    const double stopped = daq.measuredCpuJoules();
    sys.idleFor(5 * p);
    EXPECT_EQ(daq.samplesTaken(), samplesBefore + 1);
    EXPECT_EQ(daq.measuredCpuJoules(), stopped);
}

/** A stop landing exactly on a sample boundary has nothing to flush. */
TEST(DaqFixes, StopOnBoundaryFlushesNothing)
{
    System sys(testSpec());
    ComponentPort port(sys);
    Daq daq(sys, port);
    const Tick p = daq.period();

    while (sys.cpu().now() < 4 * p) {
        sys.cpu().execute(50, 0x1000, 64);
        sys.poll();
    }
    // Land exactly on the next boundary and let the periodic sample
    // fire there.
    sys.idleFor(5 * p - sys.cpu().now());
    const auto samplesBefore = daq.samplesTaken();
    daq.stop();
    EXPECT_EQ(daq.samplesTaken(), samplesBefore);
    EXPECT_TRUE(daq.stopped());
}

TEST(DaqFixes, WarmAttachMeasuresOnlyPostAttachEnergy)
{
    System sys(testSpec());
    ComponentPort port(sys);

    // Burn a substantial amount of energy before the DAQ exists.
    while (sys.cpu().now() < 5 * kTicksPerMilli) {
        sys.cpu().execute(300, 0x1000, 64);
        sys.poll();
    }
    sys.syncPower();
    const double preAttachJ = sys.cpuJoules();
    const double preAttachMemJ = sys.memoryJoules();
    ASSERT_GT(preAttachJ, 0.0);

    Daq daq(sys, port);
    while (sys.cpu().now() < 10 * kTicksPerMilli) {
        sys.cpu().execute(300, 0x1000, 64);
        sys.poll();
    }
    sys.syncPower();

    const double postAttachJ = sys.cpuJoules() - preAttachJ;
    const double postAttachMemJ = sys.memoryJoules() - preAttachMemJ;
    EXPECT_NEAR(daq.measuredCpuJoules(), postAttachJ,
                postAttachJ * 0.03);
    EXPECT_NEAR(daq.measuredMemJoules(), postAttachMemJ,
                postAttachMemJ * 0.03);
    // The pre-fix behaviour folded the entire pre-attach energy into
    // the first window; make sure nothing like that survives.
    EXPECT_LT(daq.measuredCpuJoules(), sys.cpuJoules() * 0.7);
}
