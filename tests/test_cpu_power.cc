/**
 * @file
 * Tests for the CPU timing model, power models, thermal model and DVFS.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/platform.hh"
#include "sim/system.hh"

using namespace javelin;
using sim::CpuModel;
using sim::MemoryHierarchy;
using sim::PerfCounters;
using sim::PowerModel;
using sim::System;
using sim::ThermalModel;

namespace {

sim::PlatformSpec
tinySpec()
{
    sim::PlatformSpec spec = sim::p6Spec();
    spec.memory.l1i.sizeBytes = 4 * kKiB;
    spec.memory.l1d.sizeBytes = 4 * kKiB;
    spec.memory.l2->sizeBytes = 64 * kKiB;
    return spec;
}

} // namespace

TEST(CpuModel, TimeAdvancesWithCycles)
{
    System sys(tinySpec());
    auto &cpu = sys.cpu();
    const Tick t0 = cpu.now();
    cpu.execute(1600, 0x1000, 64);
    // 1600 micro-ops at 0.45 CPI = 720 cycles = 450 ns at 1.6 GHz,
    // plus I-fetch penalty for one cold line.
    EXPECT_GT(cpu.now(), t0 + 400'000); // > 400 ns in ps
    EXPECT_LT(cpu.now(), t0 + 800'000);
    EXPECT_EQ(cpu.counters().instructions, 1600u);
}

TEST(CpuModel, LoadsRetireAsInstructions)
{
    System sys(tinySpec());
    auto &cpu = sys.cpu();
    cpu.load(0x100);
    cpu.store(0x100);
    cpu.branch(false);
    EXPECT_EQ(cpu.counters().instructions, 3u);
    EXPECT_EQ(cpu.counters().branches, 1u);
}

TEST(CpuModel, MispredictCostsCycles)
{
    System sys(tinySpec());
    auto &cpu = sys.cpu();
    cpu.branch(false);
    const auto c0 = cpu.counters().cycles;
    cpu.branch(true);
    EXPECT_GE(cpu.counters().cycles - c0,
              sys.spec().cpu.branchPenalty);
    EXPECT_EQ(cpu.counters().branchMispredicts, 1u);
}

TEST(CpuModel, FractionalStallsAccumulate)
{
    // Regression: chargePenalty/stall used to truncate fractional stall
    // cycles per event, so sub-cycle penalties (memStallFactor scaling,
    // FP-latency stalls) never reached the counter and stallCycles
    // drifted away from cycles on long runs. The accumulator must
    // floor the running sum, not each addend.
    System sys(tinySpec());
    auto &cpu = sys.cpu();
    for (int i = 0; i < 1000; ++i)
        cpu.stall(0.25);
    EXPECT_EQ(cpu.counters().stallCycles, 250u);
    // A stall-only workload burns cycles and stall cycles in lockstep:
    // both counters floor the same accumulated value.
    EXPECT_EQ(cpu.counters().cycles, cpu.counters().stallCycles);
}

TEST(CpuModel, StallCountersReconcileUnderMixedLoad)
{
    // Drive a mix of memory stalls (scaled by memStallFactor < 1 on the
    // P6), mispredicts and explicit fractional stalls, and check the
    // stall counter stays consistent with total cycle progress: stalls
    // can never exceed cycles, and must stay within one cycle of the
    // cycle progress not explained by retired micro-ops.
    System sys(tinySpec());
    auto &cpu = sys.cpu();
    for (int i = 0; i < 5000; ++i) {
        cpu.load(static_cast<sim::Address>(i) * 64);
        cpu.branch(i % 7 == 0);
        cpu.stall(0.125);
    }
    const auto &c = cpu.counters();
    EXPECT_LE(c.stallCycles, c.cycles);
    const double baseWork =
        static_cast<double>(c.instructions) * sys.spec().cpu.baseCpi;
    const double unexplained =
        static_cast<double>(c.cycles) - baseWork -
        static_cast<double>(c.stallCycles);
    EXPECT_NEAR(unexplained, 0.0, 2.0);
}

TEST(CpuModel, CacheMissStallsExposed)
{
    System sys(tinySpec());
    auto &cpu = sys.cpu();
    cpu.load(0x200000); // cold: L1+L2 miss
    const auto stalls = cpu.counters().stallCycles;
    EXPECT_GT(stalls, 50u); // 180 * 0.7 ish
    cpu.load(0x200000); // hot
    EXPECT_EQ(cpu.counters().stallCycles, stalls);
}

TEST(CpuModel, DutyCycleStretchesTime)
{
    System sysA(tinySpec()), sysB(tinySpec());
    sysB.cpu().setDutyCycle(0.5);
    sysA.cpu().execute(10000, 0x1000, 0);
    sysB.cpu().execute(10000, 0x1000, 0);
    EXPECT_NEAR(static_cast<double>(sysB.cpu().now()),
                2.0 * static_cast<double>(sysA.cpu().now()),
                static_cast<double>(sysA.cpu().now()) * 0.01);
}

TEST(CpuModel, FrequencyScalesTime)
{
    System sysA(tinySpec()), sysB(tinySpec());
    sysB.cpu().setFrequency(0.8e9);
    sysA.cpu().execute(10000, 0x1000, 0);
    sysB.cpu().execute(10000, 0x1000, 0);
    EXPECT_NEAR(static_cast<double>(sysB.cpu().now()),
                2.0 * static_cast<double>(sysA.cpu().now()),
                static_cast<double>(sysA.cpu().now()) * 0.01);
}

TEST(CpuModel, IdleAdvancesTimeNotCycles)
{
    System sys(tinySpec());
    auto &cpu = sys.cpu();
    const auto c0 = cpu.counters().cycles;
    cpu.idleFor(kTicksPerMilli);
    EXPECT_GE(cpu.now(), kTicksPerMilli);
    EXPECT_EQ(cpu.counters().cycles, c0);
}

TEST(PowerModel, IdleOnlyIntegration)
{
    PowerModel pm(sim::p6Spec().power);
    PerfCounters c;
    pm.update(c, kTicksPerSecond); // one second of nothing
    EXPECT_NEAR(pm.cumulativeJoules(), sim::p6Spec().power.idleWatts,
                1e-9);
}

TEST(PowerModel, DynamicEnergyAddsUp)
{
    const auto cfg = sim::p6Spec().power;
    PowerModel pm(cfg);
    PerfCounters c;
    c.instructions = 1'000'000;
    pm.update(c, kTicksPerMilli);
    const double expected =
        cfg.idleWatts * 1e-3 + cfg.epInstr * 1e6;
    EXPECT_NEAR(pm.cumulativeJoules(), expected, expected * 1e-9);
}

TEST(PowerModel, VoltageScalesQuadratically)
{
    auto cfg = sim::p6Spec().power;
    PowerModel a(cfg), b(cfg);
    b.setVoltage(cfg.nominalVolts / 2);
    PerfCounters c;
    c.instructions = 1'000'000;
    a.update(c, 0);
    b.update(c, 0);
    EXPECT_NEAR(b.cumulativeJoules(), a.cumulativeJoules() / 4, 1e-12);
}

TEST(PowerModel, WindowWatts)
{
    PowerModel pm(sim::p6Spec().power);
    PerfCounters c;
    pm.update(c, kTicksPerMilli);
    const double w = pm.windowWatts(0.0, 0, kTicksPerMilli);
    EXPECT_NEAR(w, sim::p6Spec().power.idleWatts, 1e-9);
}

TEST(PowerModel, TimeBackwardsPanics)
{
    PowerModel pm(sim::p6Spec().power);
    PerfCounters c;
    pm.update(c, 1000);
    EXPECT_DEATH(pm.update(c, 500), "backwards");
}

TEST(MemoryPowerModel, IdleAndAccessEnergy)
{
    const auto cfg = sim::p6Spec().memPower;
    sim::MemoryPowerModel mp(cfg);
    PerfCounters c;
    c.dramAccesses = 1000;
    mp.update(c, kTicksPerMilli);
    EXPECT_NEAR(mp.cumulativeJoules(),
                cfg.idleWatts * 1e-3 + cfg.epAccess * 1000, 1e-12);
}

TEST(Thermal, SteadyStateFanOn)
{
    ThermalModel tm(sim::p6Spec().thermal);
    // Fig. 1: ~12.5 W with the fan on settles near 60 C.
    for (int i = 0; i < 100000; ++i)
        tm.step(12.5, 0.01);
    EXPECT_NEAR(tm.temperatureC(), tm.steadyStateC(12.5), 0.5);
    EXPECT_NEAR(tm.temperatureC(), 60.0, 3.0);
    EXPECT_FALSE(tm.throttled());
}

TEST(Thermal, FanOffReaches99InAboutFourMinutes)
{
    ThermalModel tm(sim::p6Spec().thermal);
    // Warm up with the fan on first (Fig. 1 starts from steady state).
    for (int i = 0; i < 100000; ++i)
        tm.step(12.5, 0.01);
    tm.setFanEnabled(false);
    double t = 0;
    while (!tm.throttled() && t < 1000.0) {
        tm.step(12.5, 0.1);
        t += 0.1;
    }
    EXPECT_TRUE(tm.throttled());
    EXPECT_GT(t, 120.0);
    EXPECT_LT(t, 400.0); // paper: ~240 s
}

TEST(Thermal, ThrottleHysteresis)
{
    ThermalModel tm(sim::p6Spec().thermal);
    tm.setFanEnabled(false);
    while (!tm.throttled())
        tm.step(14.0, 1.0);
    EXPECT_DOUBLE_EQ(tm.requestedDuty(),
                     sim::p6Spec().thermal.throttleDuty);
    // Cooling below the off-threshold releases the throttle.
    while (tm.throttled())
        tm.step(0.0, 1.0);
    EXPECT_LT(tm.temperatureC(),
              sim::p6Spec().thermal.throttleOnC);
    EXPECT_DOUBLE_EQ(tm.requestedDuty(), 1.0);
}

/**
 * A step on which the throttle engages must charge throttledSeconds
 * only for the portion past the trip point, not the whole step: the
 * trajectory is a monotone exponential, so the crossing instant has a
 * closed form t* = tau ln((T0 - target)/(thr - target)) and the split
 * can be checked exactly.
 */
TEST(Thermal, EngageStepSplitsAtTripPointCrossing)
{
    const auto cfg = sim::p6Spec().thermal;
    ThermalModel tm(cfg);
    tm.setFanEnabled(false);

    // Heat to just below the on-threshold with short steps, then take
    // one long step that crosses it mid-way.
    const double watts = 14.0;
    while (tm.temperatureC() < cfg.throttleOnC - 1.0)
        tm.step(watts, 0.5);
    ASSERT_FALSE(tm.throttled());
    ASSERT_EQ(tm.throttledSeconds(), 0.0);

    const double t0 = tm.temperatureC();
    const double tau = cfg.rFanOffCperW * cfg.capacitanceJperC;
    const double target = cfg.ambientC + watts * cfg.rFanOffCperW;
    const double dt = 30.0;
    ASSERT_TRUE(tm.step(watts, dt)); // engages on this step
    ASSERT_TRUE(tm.throttled());

    const double tCross =
        tau * std::log((t0 - target) / (cfg.throttleOnC - target));
    ASSERT_GT(tCross, 0.0);
    ASSERT_LT(tCross, dt);
    EXPECT_NEAR(tm.throttledSeconds(), dt - tCross, 1e-12);
}

/** The disengage flip is split symmetrically at the off-threshold. */
TEST(Thermal, DisengageStepSplitsAtTripPointCrossing)
{
    const auto cfg = sim::p6Spec().thermal;
    ThermalModel tm(cfg);
    tm.setFanEnabled(false);
    while (!tm.throttled())
        tm.step(14.0, 1.0);
    const double engaged = tm.throttledSeconds();

    // One long cooling step that crosses the off-threshold mid-way:
    // only the time still above it is throttled.
    const double t0 = tm.temperatureC();
    ASSERT_GT(t0, cfg.throttleOffC);
    const double tau = cfg.rFanOffCperW * cfg.capacitanceJperC;
    const double target = cfg.ambientC; // zero watts
    const double dt = 200.0;
    ASSERT_TRUE(tm.step(0.0, dt)); // disengages on this step
    ASSERT_FALSE(tm.throttled());

    const double tCross =
        tau * std::log((t0 - target) / (cfg.throttleOffC - target));
    ASSERT_GT(tCross, 0.0);
    ASSERT_LT(tCross, dt);
    EXPECT_NEAR(tm.throttledSeconds(), engaged + tCross, 1e-12);
}

/** Steps fully inside one state charge whole-step (engaged) or none
 *  (released), unchanged by the boundary-splitting fix. */
TEST(Thermal, NonFlippingStepsChargeWholeOrNothing)
{
    const auto cfg = sim::p6Spec().thermal;
    ThermalModel tm(cfg);
    tm.setFanEnabled(false);
    while (!tm.throttled())
        tm.step(14.0, 1.0);
    const double engaged = tm.throttledSeconds();

    // Still above the off-threshold after a short hot step: the whole
    // step is throttled time.
    ASSERT_FALSE(tm.step(14.0, 0.25));
    ASSERT_TRUE(tm.throttled());
    EXPECT_NEAR(tm.throttledSeconds(), engaged + 0.25, 1e-12);
}

TEST(Thermal, StableForLargeSteps)
{
    ThermalModel tm(sim::p6Spec().thermal);
    tm.step(10.0, 1e6); // exact exponential: no oscillation
    EXPECT_NEAR(tm.temperatureC(), tm.steadyStateC(10.0), 1e-6);
}

TEST(System, ThermalThrottlingEngagesUnderLoad)
{
    auto spec = tinySpec();
    // Shrink the thermal mass so the trip happens within a short run.
    spec.thermal.capacitanceJperC = 0.0005;
    System sys(spec);
    sys.thermal().setFanEnabled(false);
    for (int i = 0; i < 2000; ++i) {
        sys.cpu().execute(4000, 0x1000, 256);
        sys.cpu().load(0x200000 + i * 64);
        sys.poll();
    }
    EXPECT_TRUE(sys.thermal().maxTemperatureC() > 95.0);
    EXPECT_LT(sys.cpu().dutyCycle(), 1.0);
}

TEST(Dvfs, OperatingPointChangesFrequencyAndVoltage)
{
    System sys(tinySpec());
    auto &dvfs = sys.dvfs();
    EXPECT_EQ(dvfs.currentIndex(), dvfs.numPoints() - 1);
    dvfs.set(0);
    EXPECT_DOUBLE_EQ(sys.cpu().frequency(), dvfs.point(0).freqHz);
    EXPECT_DOUBLE_EQ(sys.power().voltage(), dvfs.point(0).volts);
    dvfs.up();
    EXPECT_EQ(dvfs.currentIndex(), 1u);
    dvfs.down();
    dvfs.down(); // saturates at 0
    EXPECT_EQ(dvfs.currentIndex(), 0u);
}

TEST(Dvfs, LowerPointSavesEnergyOnFixedWork)
{
    System fast(tinySpec()), slow(tinySpec());
    slow.dvfs().set(0);
    for (int i = 0; i < 1000; ++i) {
        fast.cpu().execute(1000, 0x1000, 64);
        slow.cpu().execute(1000, 0x1000, 64);
    }
    EXPECT_LT(slow.cpuJoules(), fast.cpuJoules());
    EXPECT_GT(slow.cpu().now(), fast.cpu().now());
}

TEST(System, PeriodicTasksFire)
{
    System sys(tinySpec());
    int fired = 0;
    sys.addPeriodicTask("t", 10 * kTicksPerMicro,
                        [&](Tick) { ++fired; });
    while (sys.cpu().now() < 1000 * kTicksPerMicro) {
        sys.cpu().execute(100, 0x1000, 0);
        sys.poll();
    }
    EXPECT_GE(fired, 95);
    EXPECT_LE(fired, 105);
}

TEST(System, IdleForFiresTasks)
{
    System sys(tinySpec());
    int fired = 0;
    sys.addPeriodicTask("t", kTicksPerMilli, [&](Tick) { ++fired; });
    sys.idleFor(10 * kTicksPerMilli);
    EXPECT_GE(fired, 9);
}

TEST(System, EnergyMonotonicallyIncreases)
{
    System sys(tinySpec());
    double last = 0;
    for (int i = 0; i < 100; ++i) {
        sys.cpu().execute(500, 0x1000, 64);
        const double j = sys.cpuJoules();
        EXPECT_GE(j, last);
        last = j;
    }
    EXPECT_GT(last, 0.0);
}
