/**
 * @file
 * Golden-run regression tests.
 *
 * Pins the end-to-end architectural outcome (cycles, instructions,
 * cache misses, DRAM accesses) and the ground-truth energy of two
 * small deterministic runs — one Jikes configuration on the P6, one
 * Kaffe configuration on the PXA255. Any change to the simulator that
 * silently alters a single architectural event fails here with a
 * field-by-field diff.
 *
 * These values gate the simulator fast path (DESIGN.md §5c/§5d): the
 * MRU memos, the SoA way layout, the batched block accessors, the
 * de-virtualized level dispatch, the threaded interpreter dispatch and
 * the batched cycle accounting must reproduce every counter and every
 * joule bit-for-bit. A third, interpreter-tier-only run pins the
 * dispatch rewrite independently of the JIT tiers.
 *
 * Updating the goldens
 * --------------------
 * Only update after convincing yourself the change is an intentional
 * model change (new cost constant, new event) — never to paper over
 * an "optimization" that drifted. Run with
 *
 *     JAVELIN_GOLDEN_PRINT=1 ./test_golden_runs
 *
 * and paste the printed initializers over kGoldenJikes / kGoldenKaffe.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/experiment.hh"
#include "util/kv_store.hh"
#include "jvm/jvm.hh"
#include "sim/platform.hh"
#include "workloads/program_builder.hh"
#include "workloads/suite.hh"

using namespace javelin;

namespace {

/** The pinned architectural + energy outcome of one run. */
struct Golden
{
    const char *name;
    std::uint64_t cycles;
    std::uint64_t instructions;
    std::uint64_t l1iMisses;
    std::uint64_t l1dMisses;
    std::uint64_t l2Misses;
    std::uint64_t dramAccesses;
    std::uint64_t dramWritebacks;
    double cpuJoules;
    double memJoules;
};

bool
printRequested()
{
    const char *p = std::getenv("JAVELIN_GOLDEN_PRINT");
    return p != nullptr && p[0] != '\0' && p[0] != '0';
}

std::string
initializerText(const char *name, const harness::ExperimentResult &res)
{
    const auto &c = res.counters;
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "constexpr Golden kGolden%s = {\n"
                  "    \"%s\",\n"
                  "    %lluu, %lluu, %lluu, %lluu, %lluu, %lluu, "
                  "%lluu,\n"
                  "    %.17g, %.17g,\n"
                  "};\n",
                  name, name,
                  static_cast<unsigned long long>(c.cycles),
                  static_cast<unsigned long long>(c.instructions),
                  static_cast<unsigned long long>(c.l1iMisses),
                  static_cast<unsigned long long>(c.l1dMisses),
                  static_cast<unsigned long long>(c.l2Misses),
                  static_cast<unsigned long long>(c.dramAccesses),
                  static_cast<unsigned long long>(c.dramWritebacks),
                  res.groundTruthCpuJoules, res.groundTruthMemJoules);
    return buf;
}

void
printInitializer(const char *name, const harness::ExperimentResult &res)
{
    std::fputs(initializerText(name, res).c_str(), stdout);
}

/**
 * JAVELIN_GOLDEN_KV=path: also archive this run's capture in a
 * javelin-kv-v1 store under "golden/<name>" (query with
 * `javelin-kv get <path> golden/<name>`), so re-goldening sessions
 * keep a history of what each capture looked like instead of pasting
 * over it.
 */
void
storeCapture(const char *name, const harness::ExperimentResult &res)
{
    const char *path = std::getenv("JAVELIN_GOLDEN_KV");
    if (path == nullptr || path[0] == '\0')
        return;
    KvStore store(path);
    store.put(std::string("golden/") + name,
              initializerText(name, res));
    store.close();
}

/** Compare one run against its golden, printing a full diff table. */
void
expectGolden(const Golden &g, const harness::ExperimentResult &res)
{
    const auto &c = res.counters;
    bool ok = c.cycles == g.cycles && c.instructions == g.instructions &&
              c.l1iMisses == g.l1iMisses && c.l1dMisses == g.l1dMisses &&
              c.l2Misses == g.l2Misses &&
              c.dramAccesses == g.dramAccesses &&
              c.dramWritebacks == g.dramWritebacks &&
              res.groundTruthCpuJoules == g.cpuJoules &&
              res.groundTruthMemJoules == g.memJoules;
    if (ok)
        return;

    auto row = [](const char *field, double want, double got) {
        std::fprintf(stderr, "  %-16s golden %-22.17g actual %-22.17g %s\n",
                     field, want, got, want == got ? "" : "<-- DIFFERS");
    };
    std::fprintf(stderr, "golden-run mismatch for %s:\n", g.name);
    row("cycles", static_cast<double>(g.cycles),
        static_cast<double>(c.cycles));
    row("instructions", static_cast<double>(g.instructions),
        static_cast<double>(c.instructions));
    row("l1iMisses", static_cast<double>(g.l1iMisses),
        static_cast<double>(c.l1iMisses));
    row("l1dMisses", static_cast<double>(g.l1dMisses),
        static_cast<double>(c.l1dMisses));
    row("l2Misses", static_cast<double>(g.l2Misses),
        static_cast<double>(c.l2Misses));
    row("dramAccesses", static_cast<double>(g.dramAccesses),
        static_cast<double>(c.dramAccesses));
    row("dramWritebacks", static_cast<double>(g.dramWritebacks),
        static_cast<double>(c.dramWritebacks));
    row("cpuJoules", g.cpuJoules, res.groundTruthCpuJoules);
    row("memJoules", g.memJoules, res.groundTruthMemJoules);
    std::fprintf(stderr,
                 "If (and only if) this is an intentional model change, "
                 "rerun with JAVELIN_GOLDEN_PRINT=1 and paste the new "
                 "initializer into tests/test_golden_runs.cc.\n");
    GTEST_FAIL() << "architectural state drifted from golden run "
                 << g.name;
}

// ---------------------------------------------------------------------
// Pinned values. Re-goldened for the v2 GC charge model (DESIGN.md
// §5e): per-edge mark/scan/copy charges are folded into per-object
// batched charges (one execute + one stall per phase spec) and the copy
// path fetches a fixed 128-byte plan span instead of a span
// proportional to the bytes moved. Retired instruction counts are
// unchanged in every run — folding regroups instruction *fetch* spans
// and the cycle/stall accumulation order, never the retired-uop
// totals. Cycles, l1i misses and joules shift accordingly; both the
// fast path and the reference oracle emit this same v2 stream
// (tests/test_gc_diff.cc holds them bit-identical). See the file
// header for the update procedure.
//
// The Interp golden was re-captured once more for the bytecode-operand
// stream buffer (DESIGN.md §5g): the interpreted tier reads adjacent
// operand words from a one-line buffer instead of re-accessing the
// D-cache per bytecode word, so its L1D access count drops while
// retired instructions and every pinned miss counter stay identical
// (cycles 24300201 -> 24300204, cpuJoules 0.311029 -> 0.309926,
// memJoules +4.4e-10; all other fields unchanged). The three compiled-
// tier goldens never issue interpreted operand fetches and did not
// move.
// ---------------------------------------------------------------------

constexpr Golden kGoldenJikes = {
    "Jikes",
    7398349u, 11194228u, 1325u, 132561u, 1050u, 40793u, 760u,
    0.08538650216250028, 0.0026103471562500011,
};

constexpr Golden kGoldenGenMs = {
    "GenMs",
    10883719u, 15600554u, 400u, 340576u, 2449u, 28015u, 1287u,
    0.12134708392500031, 0.0027261511875000025,
};

constexpr Golden kGoldenKaffe = {
    "Kaffe",
    31858790u, 24782205u, 583u, 118120u, 0u, 118703u, 103687u,
    0.022306312178750089, 0.0030669148756248699,
};

constexpr Golden kGoldenCallHeavy = {
    "CallHeavy",
    7589370u, 8886492u, 20694u, 221637u, 6996u, 52298u, 4271u,
    0.07473267599149995, 0.003165754171750002,
};

constexpr Golden kGoldenInterp = {
    "Interp",
    24300204u, 43197967u, 42u, 205683u, 266u, 10821u, 0u,
    0.30992634908100003, 0.004175641929500002,
};

constexpr Golden kGoldenMultiTenant = {
    "MultiTenant",
    70641431u, 118576859u, 20648u, 1226495u, 11380u, 83454u, 5789u,
    0.87188890667192498, 0.014182179153999818,
};

/** Pinned schedule shape of the multi-tenant golden (see below). */
constexpr std::uint64_t kGoldenMultiTenantSwitches = 7274;

/**
 * The synthetic call-density stress (deep helper chains, recursion,
 * cold calls through the dispatch tree; frames turn over every ~5-10
 * bytecodes): pins the trace executor's inline Call/Ret machinery —
 * frame push/pop charges, the register-pool watermarks, the deep-stack
 * spill/frame-link traffic — against lockstep drift that the
 * fast-vs-oracle differentials cannot see.
 */
harness::ExperimentResult
runCallHeavy()
{
    harness::ExperimentConfig cfg;
    cfg.platform = sim::PlatformKind::P6;
    cfg.vm = jvm::VmKind::Jikes;
    cfg.collector = jvm::CollectorKind::SemiSpace;
    cfg.heapNominalMB = 32;
    cfg.dataset = workloads::DatasetScale::Small;
    return harness::runExperiment(cfg,
                                  workloads::benchmark("call_heavy"));
}

harness::ExperimentResult
runJikes()
{
    harness::ExperimentConfig cfg;
    cfg.platform = sim::PlatformKind::P6;
    cfg.vm = jvm::VmKind::Jikes;
    cfg.collector = jvm::CollectorKind::SemiSpace;
    cfg.heapNominalMB = 32;
    cfg.dataset = workloads::DatasetScale::Small;
    return harness::runExperiment(cfg,
                                  workloads::benchmark("_202_jess"));
}

harness::ExperimentResult
runGenMs()
{
    harness::ExperimentConfig cfg;
    cfg.platform = sim::PlatformKind::P6;
    cfg.vm = jvm::VmKind::Jikes;
    cfg.collector = jvm::CollectorKind::GenMS;
    cfg.heapNominalMB = 32;
    cfg.dataset = workloads::DatasetScale::Small;
    return harness::runExperiment(cfg, workloads::benchmark("_209_db"));
}

harness::ExperimentResult
runKaffe()
{
    harness::ExperimentConfig cfg;
    cfg.platform = sim::PlatformKind::Pxa255;
    cfg.vm = jvm::VmKind::Kaffe;
    cfg.collector = jvm::CollectorKind::IncrementalMS;
    cfg.heapNominalMB = 16;
    cfg.dataset = workloads::DatasetScale::Small;
    return harness::runExperiment(cfg,
                                  workloads::benchmark("_201_compress"));
}

/**
 * Interpreter-tier-only run, driven through the Jvm directly (the
 * experiment harness has no tier knob): every bytecode goes through
 * Interpreter::run's interpreted dispatch/cost path, so this golden
 * pins the threaded-dispatch rewrite (DESIGN.md §5d) independently of
 * the compiled tiers. Synthesizes an ExperimentResult so the print /
 * compare machinery above is shared.
 */
harness::ExperimentResult
runInterp()
{
    workloads::StudyScale scale =
        workloads::studyScaleFor(workloads::DatasetScale::Small);
    scale.volume = 1.0 / 16.0; // interpreted code is ~4x slower
    const jvm::Program program =
        workloads::buildProgram(workloads::benchmark("_202_jess"), scale);

    sim::System system(sim::p6Spec());
    jvm::JvmConfig cfg;
    cfg.kind = jvm::VmKind::Jikes;
    cfg.collector = jvm::CollectorKind::SemiSpace;
    cfg.heapBytes = 512 * kKiB;
    cfg.interp.compileOnInvoke = jvm::Tier::Interpreted;
    cfg.adaptiveOptimization = false;
    jvm::Jvm vm(system, program, cfg);

    harness::ExperimentResult res;
    res.run = vm.run();
    res.counters = system.counters();
    res.groundTruthCpuJoules = system.cpuJoules();
    res.groundTruthMemJoules = system.memoryJoules();
    return res;
}

/**
 * Two Jikes/GenMS tenants serving Poisson request traffic on one P6
 * (DESIGN.md §11): pins the co-tenancy scheduler — quantum
 * interleaving, scheduler-dispatch charges, shared-cache/DRAM
 * contention between tenants — on top of everything the single-VM
 * goldens already pin. Any drift in the slice boundaries reshuffles
 * the interleaving and lands here as a counter diff.
 */
harness::ExperimentResult
runMultiTenant()
{
    harness::ExperimentConfig cfg;
    cfg.platform = sim::PlatformKind::P6;
    cfg.vm = jvm::VmKind::Jikes;
    cfg.collector = jvm::CollectorKind::GenMS;
    cfg.heapNominalMB = 32;
    cfg.dataset = workloads::DatasetScale::Small;
    cfg.tenants = 2;
    cfg.requestsPerTenant = 12;
    cfg.requestRateHz = 3000.0;
    return harness::runExperiment(cfg,
                                  workloads::benchmark("_202_jess"));
}

} // namespace

TEST(GoldenRuns, JikesSemiSpaceP6)
{
    const auto res = runJikes();
    ASSERT_TRUE(res.ok());
    storeCapture("Jikes", res);
    if (printRequested()) {
        printInitializer("Jikes", res);
        GTEST_SKIP() << "print mode: golden not checked";
    }
    expectGolden(kGoldenJikes, res);
}

/**
 * GenMS at the tightest paper heap: nursery evacuation (remembered-set
 * replay, region-predicate devirtualization) plus mature-space marking
 * and lazy free-list sweeping all run in one configuration, so this
 * golden pins the full breadth of the batched GC fast paths.
 */
TEST(GoldenRuns, GenMsP6Heap32)
{
    const auto res = runGenMs();
    ASSERT_TRUE(res.ok());
    storeCapture("GenMs", res);
    if (printRequested()) {
        printInitializer("GenMs", res);
        GTEST_SKIP() << "print mode: golden not checked";
    }
    expectGolden(kGoldenGenMs, res);
}

TEST(GoldenRuns, KaffeIncMsPxa255)
{
    const auto res = runKaffe();
    ASSERT_TRUE(res.ok());
    storeCapture("Kaffe", res);
    if (printRequested()) {
        printInitializer("Kaffe", res);
        GTEST_SKIP() << "print mode: golden not checked";
    }
    expectGolden(kGoldenKaffe, res);
}

TEST(GoldenRuns, CallHeavySemiSpaceP6)
{
    const auto res = runCallHeavy();
    ASSERT_TRUE(res.ok());
    storeCapture("CallHeavy", res);
    if (printRequested()) {
        printInitializer("CallHeavy", res);
        GTEST_SKIP() << "print mode: golden not checked";
    }
    expectGolden(kGoldenCallHeavy, res);
}

TEST(GoldenRuns, InterpreterTierP6)
{
    const auto res = runInterp();
    ASSERT_TRUE(res.ok());
    storeCapture("Interp", res);
    if (printRequested()) {
        printInitializer("Interp", res);
        GTEST_SKIP() << "print mode: golden not checked";
    }
    expectGolden(kGoldenInterp, res);
}

TEST(GoldenRuns, MultiTenantGenMsP6)
{
    const auto res = runMultiTenant();
    ASSERT_TRUE(res.ok());
    storeCapture("MultiTenant", res);
    if (printRequested()) {
        printInitializer("MultiTenant", res);
        std::printf("constexpr std::uint64_t kGoldenMultiTenantSwitches "
                    "= %llu;\n",
                    static_cast<unsigned long long>(
                        res.cotenancy.contextSwitches));
        GTEST_SKIP() << "print mode: golden not checked";
    }
    EXPECT_EQ(res.cotenancy.contextSwitches,
              kGoldenMultiTenantSwitches);
    expectGolden(kGoldenMultiTenant, res);
}

/** A golden run must be a pure function of its configuration. */
TEST(GoldenRuns, RunsAreDeterministic)
{
    const auto a = runJikes();
    const auto b = runJikes();
    EXPECT_EQ(a.counters.cycles, b.counters.cycles);
    EXPECT_EQ(a.counters.instructions, b.counters.instructions);
    EXPECT_EQ(a.counters.dramAccesses, b.counters.dramAccesses);
    EXPECT_EQ(a.groundTruthCpuJoules, b.groundTruthCpuJoules);
    EXPECT_EQ(a.groundTruthMemJoules, b.groundTruthMemJoules);
}
