/**
 * @file
 * Property suite for the measurement pipeline as a whole, parameterized
 * over benchmark x collector: conservation laws that must hold for any
 * run — energy totals match between the sampled trace, the exact
 * accountant and the power model; attributed time equals run time;
 * per-component energies are non-negative and sum to the total; peak
 * >= average for every component.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

using namespace javelin;
using namespace javelin::harness;

namespace {

struct Param
{
    const char *benchmark;
    jvm::VmKind vm;
    jvm::CollectorKind collector;
    std::uint32_t heapMB;
};

class MeasurementConservation : public testing::TestWithParam<Param>
{
};

} // namespace

TEST_P(MeasurementConservation, Holds)
{
    const auto p = GetParam();
    ExperimentConfig cfg;
    cfg.vm = p.vm;
    cfg.collector = p.collector;
    cfg.heapNominalMB = p.heapMB;
    cfg.dataset = workloads::DatasetScale::Small;
    const auto res =
        runExperiment(cfg, workloads::benchmark(p.benchmark));
    ASSERT_TRUE(res.ok());

    const auto &a = res.attribution;

    // 1. Energy conservation: sampled total ~= exact total.
    EXPECT_NEAR(a.totalCpuJoules, res.groundTruthCpuJoules,
                res.groundTruthCpuJoules * 0.05);
    EXPECT_NEAR(a.totalMemJoules, res.groundTruthMemJoules,
                res.groundTruthMemJoules * 0.10);

    // 2. Time conservation: attributed seconds ~= run seconds.
    EXPECT_NEAR(a.totalSeconds, res.run.seconds(),
                res.run.seconds() * 0.05);

    // 3. Per-component sums equal the totals exactly (same samples).
    double cpuSum = 0, memSum = 0, secSum = 0;
    for (std::size_t i = 0; i < core::kNumComponents; ++i) {
        const auto &c = a.power[i];
        EXPECT_GE(c.cpuJoules, 0.0);
        EXPECT_GE(c.peakCpuWatts,
                  c.samples ? c.avgCpuWatts() * 0.999 : 0.0);
        cpuSum += c.cpuJoules;
        memSum += c.memJoules;
        secSum += c.seconds;
    }
    EXPECT_NEAR(cpuSum, a.totalCpuJoules, 1e-9);
    EXPECT_NEAR(memSum, a.totalMemJoules, 1e-9);
    EXPECT_NEAR(secSum, a.totalSeconds, 1e-9);

    // 4. Fractions form a distribution.
    double frac = 0;
    for (std::size_t i = 0; i < core::kNumComponents; ++i)
        frac += a.energyFraction(static_cast<core::ComponentId>(i));
    EXPECT_NEAR(frac, 1.0, 1e-9);
    EXPECT_LE(a.jvmEnergyFraction(), 1.0);
    EXPECT_GE(a.jvmEnergyFraction(), 0.0);

    // 5. The run peak equals the max over component peaks.
    double peak = 0;
    for (std::size_t i = 0; i < core::kNumComponents; ++i)
        peak = std::max(peak, a.power[i].peakCpuWatts);
    EXPECT_DOUBLE_EQ(peak, a.peakCpuWatts);

    // 6. Average power sits inside the platform's physical envelope.
    const auto spec = scaledPlatformSpec(cfg);
    const double avgW = a.totalCpuJoules / a.totalSeconds;
    EXPECT_GT(avgW, spec.power.idleWatts);
    EXPECT_LT(avgW, spec.power.idleWatts + 25.0);

    // 7. Exact accountant covers the whole run.
    EXPECT_NEAR(ticksToSeconds(res.run.endTick - res.run.startTick),
                res.run.seconds(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MeasurementConservation,
    testing::Values(
        Param{"_201_compress", jvm::VmKind::Jikes,
              jvm::CollectorKind::SemiSpace, 32},
        Param{"_202_jess", jvm::VmKind::Jikes,
              jvm::CollectorKind::MarkSweep, 48},
        Param{"_209_db", jvm::VmKind::Jikes,
              jvm::CollectorKind::GenCopy, 64},
        Param{"_213_javac", jvm::VmKind::Jikes,
              jvm::CollectorKind::GenMS, 32},
        Param{"_227_mtrt", jvm::VmKind::Jikes,
              jvm::CollectorKind::GenCopy, 96},
        Param{"_228_jack", jvm::VmKind::Kaffe,
              jvm::CollectorKind::IncrementalMS, 64},
        Param{"fop", jvm::VmKind::Kaffe,
              jvm::CollectorKind::IncrementalMS, 48},
        Param{"jython", jvm::VmKind::Jikes,
              jvm::CollectorKind::GenMS, 128},
        Param{"euler", jvm::VmKind::Jikes,
              jvm::CollectorKind::SemiSpace, 64},
        Param{"moldyn", jvm::VmKind::Kaffe,
              jvm::CollectorKind::IncrementalMS, 32}),
    [](const testing::TestParamInfo<Param> &info) {
        std::string name = info.param.benchmark;
        name += "_";
        name += jvm::collectorName(info.param.collector);
        name += "_" + std::to_string(info.param.heapMB);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });
