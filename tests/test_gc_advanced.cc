/**
 * @file
 * Deeper collector tests: remembered-set pruning, forwarding chains,
 * the GenMS minor-failure fallback, incremental-collector stress, and
 * Appel nursery-bound behaviour — the paths the randomized property
 * suite reaches only occasionally.
 */

#include <gtest/gtest.h>

#include "jvm/gc/gencopy.hh"
#include "jvm/gc/genms.hh"
#include "jvm/gc/incremental_ms.hh"
#include "jvm/gc/remset.hh"
#include "jvm/gc/semispace.hh"
#include "sim/platform.hh"
#include "util/random.hh"

using namespace javelin;
using namespace javelin::jvm;

namespace {

std::vector<ClassInfo>
gcClasses()
{
    std::vector<ClassInfo> classes(2);
    classes[0].id = 0;
    classes[0].name = "Node";
    classes[0].refFields = 2;
    classes[0].scalarFields = 2;
    classes[1].id = 1;
    classes[1].name = "Object[]";
    classes[1].isRefArray = true;
    return classes;
}

class Host : public GcHost
{
  public:
    void
    forEachRoot(const std::function<void(Address &)> &fn) override
    {
        for (Address &r : roots)
            fn(r);
    }
    void gcBegin(bool) override {}
    void gcEnd(bool) override {}
    std::vector<Address> roots;
};

struct Fix
{
    explicit Fix(CollectorKind kind, std::uint64_t bytes)
        : system(sim::p6Spec()), heap(bytes), classes(gcClasses()),
          om(heap, system.cpu(), classes)
    {
        collector = makeCollector(kind, GcEnv{heap, om, system, host});
    }

    Address
    node(std::int64_t v)
    {
        const std::uint32_t bytes = om.objectBytes(classes[0], 0);
        const Address a = collector->allocate(bytes);
        if (a == kNull)
            return kNull;
        om.initObject(a, classes[0], bytes, 0);
        collector->postInit(a);
        om.storeScalar(a, 0, v);
        return a;
    }

    void
    store(Address holder, std::uint32_t slot, Address value)
    {
        if (collector->needsWriteBarrier())
            collector->writeBarrier(holder, om.refSlotAddr(holder, slot),
                                    value);
        om.storeRef(holder, slot, value);
    }

    sim::System system;
    Heap heap;
    std::vector<ClassInfo> classes;
    ObjectModel om;
    Host host;
    std::unique_ptr<Collector> collector;
};

} // namespace

TEST(RememberedSet, RecordForEachClearPrune)
{
    sim::System system(sim::p6Spec());
    RememberedSet rs(system);
    EXPECT_TRUE(rs.empty());
    rs.record(0x1000);
    rs.record(0x2000);
    rs.record(0x1000); // duplicates allowed
    EXPECT_EQ(rs.size(), 3u);

    std::vector<Address> seen;
    rs.forEach([&](Address a) { seen.push_back(a); });
    EXPECT_EQ(seen.size(), 3u);

    rs.pruneIf([](Address a) { return a == 0x1000; });
    EXPECT_EQ(rs.size(), 1u);
    rs.clear();
    EXPECT_TRUE(rs.empty());
}

TEST(RememberedSet, RecordChargesSsbStore)
{
    sim::System system(sim::p6Spec());
    RememberedSet rs(system);
    const auto before = system.counters().l1dAccesses;
    rs.record(0x1234);
    EXPECT_EQ(system.counters().l1dAccesses, before + 1);
}

TEST(GenCopy, NurseryLimitShrinksWithMatureOccupancy)
{
    Fix f(CollectorKind::GenCopy, 512 * kKiB);
    auto *gc = static_cast<GenCopyCollector *>(f.collector.get());
    const auto limit0 = gc->nurseryLimit();

    // Grow the mature live set by promoting rooted batches until it
    // presses on the Appel bound (mature free < nursery region).
    for (int batch = 0; batch < 12; ++batch) {
        for (int i = 0; i < 300; ++i)
            f.host.roots.push_back(f.node(i));
        f.collector->collect(false);
    }
    EXPECT_LT(gc->nurseryLimit(), limit0);
    EXPECT_GT(gc->nurseryLimit(), 0u);
}

TEST(GenCopy, DeepListSurvivesMinorAndMajor)
{
    Fix f(CollectorKind::GenCopy, 1 * kMiB);
    // Build a long young chain rooted once: stress the evacuation
    // queue's breadth-first traversal.
    Address head = kNull;
    for (int i = 0; i < 2000; ++i) {
        const Address n = f.node(i);
        ASSERT_NE(n, kNull);
        if (head != kNull)
            f.store(n, 0, head);
        head = n;
        if (f.host.roots.empty())
            f.host.roots.push_back(head);
        else
            f.host.roots[0] = head;
    }
    f.collector->collect(false);
    f.collector->collect(true);

    // Walk the chain: all 2000 payloads intact, in order.
    Address p = f.host.roots[0];
    for (int i = 1999; i >= 0; --i) {
        ASSERT_NE(p, kNull) << "chain broken at " << i;
        EXPECT_EQ(f.om.scalarRaw(p, 0), i);
        p = f.om.refRaw(p, 0);
    }
    EXPECT_EQ(p, kNull);
}

TEST(GenCopy, RemsetDuplicatesAreHarmless)
{
    Fix f(CollectorKind::GenCopy, 512 * kKiB);
    // Promote a holder.
    const Address h0 = f.node(1);
    f.host.roots.push_back(h0);
    f.collector->collect(false);
    const Address old = f.host.roots[0];

    // Store the same young value into the same old slot repeatedly:
    // every store records a (duplicate) remset entry.
    const Address young = f.node(7);
    for (int i = 0; i < 50; ++i)
        f.store(old, 0, young);
    auto *gc = static_cast<GenCopyCollector *>(f.collector.get());
    EXPECT_GE(gc->remset().size(), 50u);

    f.collector->collect(false);
    const Address promoted = f.om.refRaw(f.host.roots[0], 0);
    EXPECT_EQ(f.om.scalarRaw(promoted, 0), 7);
    EXPECT_TRUE(gc->remset().empty());
}

TEST(GenMS, MinorFallbackSurvivesMatureExhaustion)
{
    // Small heap, everything kept live until the mature space chokes;
    // exercises evacuateNursery -> markSweepMature -> retry.
    Fix f(CollectorKind::GenMS, 256 * kKiB);
    Rng rng(3);
    f.host.roots.assign(48, kNull);
    bool sawOom = false;
    int made = 0;
    for (int i = 0; i < 20000; ++i) {
        const Address n = f.node(i);
        if (n == kNull) {
            sawOom = true;
            break;
        }
        ++made;
        // Retain roughly half of everything forever via root churn.
        if (rng.bernoulli(0.9))
            f.host.roots[rng.uniformInt(48)] = n;
    }
    // Either we eventually OOM (acceptable: live set really grows) or
    // everything kept working; in both cases the retained graph is
    // intact.
    (void)sawOom;
    EXPECT_GT(made, 1000);
    for (const Address r : f.host.roots)
        if (r != kNull) {
            EXPECT_LT(f.om.scalarRaw(r, 0), made);
            EXPECT_GE(f.om.scalarRaw(r, 0), 0);
        }
}

TEST(GenMS, PretenuredLargeObjectsGoToMature)
{
    Fix f(CollectorKind::GenMS, 1 * kMiB);
    auto *gc = static_cast<GenMSCollector *>(f.collector.get());
    const std::uint32_t big = 6000; // >= kPretenureBytes
    const Address a = f.collector->allocate(big);
    ASSERT_NE(a, kNull);
    EXPECT_FALSE(gc->nursery().contains(a));
    EXPECT_TRUE(gc->mature().isAllocatedCell(a));
}

TEST(SemiSpace, RepeatedCollectionsIdempotentOnStableGraph)
{
    Fix f(CollectorKind::SemiSpace, 512 * kKiB);
    Address head = kNull;
    for (int i = 0; i < 100; ++i) {
        const Address n = f.node(i);
        f.store(n, 0, head);
        head = n;
    }
    f.host.roots.push_back(head);

    for (int gc = 0; gc < 6; ++gc) {
        f.collector->collect(true);
        Address p = f.host.roots[0];
        int count = 0;
        while (p != kNull) {
            ++count;
            p = f.om.refRaw(p, 0);
        }
        EXPECT_EQ(count, 100);
        // Live bytes stay flat: no duplication, no leak.
        EXPECT_EQ(f.collector->heapUsed(),
                  100u * f.om.objectBytes(f.classes[0], 0));
    }
}

TEST(IncMS, BarrierStormDuringMarkingKeepsGraph)
{
    Fix f(CollectorKind::IncrementalMS, 512 * kKiB);
    auto *gc = static_cast<IncrementalMSCollector *>(f.collector.get());
    Rng rng(17);
    f.host.roots.assign(32, kNull);

    // Continuous mutation while cycles run in the background.
    for (int i = 0; i < 30000; ++i) {
        const Address n = f.node(i);
        ASSERT_NE(n, kNull);
        const Address victim = f.host.roots[rng.uniformInt(32)];
        if (victim != kNull)
            f.store(victim, 1, n); // barrier target during marking
        f.host.roots[rng.uniformInt(32)] = n;
    }
    EXPECT_GT(gc->stats().majorCollections, 0u);
    EXPECT_GT(gc->stats().barrierHits, 0u);
    // Everything reachable is intact.
    for (const Address r : f.host.roots)
        if (r != kNull)
            EXPECT_GE(f.om.scalarRaw(r, 0), 0);
}

TEST(IncMS, ExplicitFullCycleReclaimsEverything)
{
    Fix f(CollectorKind::IncrementalMS, 256 * kKiB);
    for (int i = 0; i < 500; ++i)
        f.node(i);
    f.collector->collect(true); // start + finish atomically
    EXPECT_EQ(f.collector->heapUsed(), 0u);
}

TEST(Evacuator, ForwardingChainAcrossRegions)
{
    // Abandoned-minor scenario distilled: an object forwarded twice
    // must still resolve through processSlot's snap loop. We simulate
    // by running GenCopy minor then major and checking root identity.
    Fix f(CollectorKind::GenCopy, 512 * kKiB);
    const Address a = f.node(99);
    f.host.roots.push_back(a);
    f.collector->collect(false); // a -> mature copy A1
    const Address a1 = f.host.roots[0];
    f.collector->collect(true);  // A1 -> other half A2
    const Address a2 = f.host.roots[0];
    EXPECT_NE(a1, a2);
    EXPECT_EQ(f.om.scalarRaw(a2, 0), 99);
}

TEST(Collector, StatsAreConsistent)
{
    Fix f(CollectorKind::GenCopy, 512 * kKiB);
    Rng rng(5);
    f.host.roots.assign(16, kNull);
    for (int i = 0; i < 5000; ++i) {
        const Address n = f.node(i);
        ASSERT_NE(n, kNull);
        f.host.roots[rng.uniformInt(16)] = n;
    }
    const auto &s = f.collector->stats();
    EXPECT_EQ(s.collections, s.minorCollections + s.majorCollections);
    EXPECT_EQ(s.objectsAllocated, 5000u);
    EXPECT_GT(s.bytesAllocated, 5000u * 16);
    EXPECT_GT(s.pauseTicks, 0u);
    EXPECT_GE(s.bytesCopied / std::max<std::uint64_t>(1, s.objectsCopied),
              16u); // copied objects have at least a header
}

TEST(GenMS, ResumedEvacuationLeavesNoDanglingYoungPointers)
{
    // Regression: a minor collection that runs the mature space out of
    // cells mid-evacuation must RESUME the same pass after the
    // emergency mark-sweep. Abandoning it left promoted objects with
    // unscanned reference slots pointing into the recycled nursery
    // (observed as wild addresses on antlr/GenMS/32MB).
    Fix f(CollectorKind::GenMS, 256 * kKiB);
    Rng rng(23);
    // Live set around 55% of the heap with heavy churn: fallbacks fire
    // repeatedly while the program keeps running.
    constexpr int kRoots = 96;
    f.host.roots.assign(kRoots, kNull);
    for (int i = 0; i < 60000; ++i) {
        const Address n = f.node(i);
        ASSERT_NE(n, kNull) << "OOM at " << i;
        const Address peer = f.host.roots[rng.uniformInt(kRoots)];
        if (peer != kNull)
            f.store(n, 0, peer);
        if (rng.bernoulli(0.55))
            f.host.roots[rng.uniformInt(kRoots)] = n;
        if (i % 4096 == 4095) {
            // Full reachability sweep: every pointer must be valid.
            for (const Address r : f.host.roots) {
                Address p = r;
                int depth = 0;
                while (p != kNull && depth++ < 100000) {
                    ASSERT_TRUE(f.heap.contains(p))
                        << "dangling pointer " << p << " at step " << i;
                    p = f.om.refRaw(p, 0);
                }
            }
        }
    }
}
