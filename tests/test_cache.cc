/**
 * @file
 * Unit and property tests for the cache model and memory hierarchy.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "sim/memory_hierarchy.hh"
#include "util/random.hh"

using namespace javelin;
using sim::Address;
using sim::Cache;
using sim::MemoryHierarchy;
using sim::PerfCounters;

namespace {

Cache::Config
smallCache(std::uint64_t size = 1024, std::uint32_t assoc = 2,
           std::uint32_t line = 64)
{
    return {"test", size, assoc, line};
}

} // namespace

TEST(Cache, FirstAccessMisses)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_EQ(c.stats().readMisses, 1u);
}

TEST(Cache, HitAfterAccess)
{
    Cache c(smallCache());
    c.access(0x1000, false);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000 + 63, false).hit); // same line
    EXPECT_FALSE(c.access(0x1000 + 64, false).hit); // next line
}

TEST(Cache, LruEviction)
{
    // 1 KiB, 2-way, 64 B lines -> 8 sets. Addresses 0, 512, 1024 share
    // set 0 (line numbers 0, 8, 16).
    Cache c(smallCache());
    c.access(0, false);
    c.access(512, false);
    c.access(0, false);     // refresh line 0
    c.access(1024, false);  // evicts 512 (LRU)
    EXPECT_TRUE(c.access(0, false).hit);
    EXPECT_FALSE(c.access(512, false).hit);
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache c(smallCache());
    c.access(0, true); // dirty
    c.access(512, false);
    const auto r = c.access(1024, false); // evicts dirty line 0
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c(smallCache());
    c.access(0, false);
    c.access(512, false);
    EXPECT_FALSE(c.access(1024, false).writeback);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c(smallCache());
    c.access(0, false);
    c.access(0, true); // now dirty
    c.access(512, false);
    EXPECT_TRUE(c.access(1024, false).writeback);
}

TEST(Cache, FlushInvalidatesAll)
{
    Cache c(smallCache());
    c.access(0x2000, false);
    c.flush();
    EXPECT_FALSE(c.contains(0x2000));
    EXPECT_FALSE(c.access(0x2000, false).hit);
}

TEST(Cache, CapacityWorkingSetFits)
{
    // Working set equal to capacity must fully hit on the second pass.
    Cache c(smallCache(4096, 4, 64));
    for (Address a = 0; a < 4096; a += 64)
        c.access(a, false);
    for (Address a = 0; a < 4096; a += 64)
        EXPECT_TRUE(c.access(a, false).hit) << a;
}

TEST(Cache, OverCapacityThrashes)
{
    // Sequential working set of 2x capacity with LRU: zero hits.
    Cache c(smallCache(1024, 2, 64));
    for (int pass = 0; pass < 3; ++pass)
        for (Address a = 0; a < 2048; a += 64)
            c.access(a, false);
    EXPECT_EQ(c.stats().reads, c.stats().readMisses);
}

TEST(Cache, PrefetchInsertTaggedAndHitOnce)
{
    Cache c(smallCache());
    c.insertPrefetch(0x4000);
    EXPECT_TRUE(c.contains(0x4000));
    auto r = c.access(0x4000, false);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.prefetchedHit);
    r = c.access(0x4000, false);
    EXPECT_TRUE(r.hit);
    EXPECT_FALSE(r.prefetchedHit); // tag cleared by first demand hit
}

TEST(Cache, BadConfigPanics)
{
    Cache::Config bad = smallCache();
    bad.lineBytes = 48; // not a power of two
    EXPECT_DEATH(Cache c(bad), "power of two");
}

/** Parameterized geometry sweep: invariants hold for all shapes. */
class CacheGeometry
    : public testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(CacheGeometry, HitAfterMissInvariant)
{
    const auto [size_kb, assoc, line] = GetParam();
    Cache c(smallCache(static_cast<std::uint64_t>(size_kb) * 1024,
                       assoc, line));
    Rng rng(123);
    for (int i = 0; i < 4000; ++i) {
        const Address a = rng.uniformInt(1 << 20);
        c.access(a, rng.bernoulli(0.3));
        EXPECT_TRUE(c.access(a, false).hit);
    }
    // Conservation: every access is a read or a write.
    EXPECT_EQ(c.stats().accesses(), 8000u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    testing::Values(std::make_tuple(1, 1, 32), std::make_tuple(4, 2, 32),
                    std::make_tuple(8, 4, 64), std::make_tuple(16, 8, 64),
                    std::make_tuple(32, 8, 64),
                    std::make_tuple(32, 32, 32),
                    std::make_tuple(256, 8, 64)));

TEST(MemoryHierarchy, L2HitCheaperThanDram)
{
    PerfCounters counters;
    MemoryHierarchy::Config cfg;
    cfg.l1d = smallCache(1024, 2, 64);
    cfg.l1i = smallCache(1024, 2, 64);
    cfg.l2 = smallCache(8192, 4, 64);
    cfg.l2HitCycles = 9;
    cfg.dramCycles = 180;
    MemoryHierarchy mh(cfg, counters);

    const auto cold = mh.data(0x10000, false); // L1+L2 miss -> DRAM
    EXPECT_GE(cold, 180u);
    // Evict from tiny L1 but keep in L2.
    mh.data(0x10000 + 512, false);
    mh.data(0x10000 + 1024, false);
    const auto warm = mh.data(0x10000, false); // L1 miss, L2 hit
    EXPECT_EQ(warm, 9u);
    EXPECT_EQ(counters.dramAccesses, 3u);
}

TEST(MemoryHierarchy, NoL2GoesStraightToDram)
{
    PerfCounters counters;
    MemoryHierarchy::Config cfg;
    cfg.l1d = smallCache(1024, 2, 32);
    cfg.l1i = smallCache(1024, 2, 32);
    cfg.l2.reset();
    cfg.dramCycles = 24;
    MemoryHierarchy mh(cfg, counters);
    EXPECT_FALSE(mh.hasL2());
    EXPECT_EQ(mh.data(0x4000, false), 24u);
    EXPECT_EQ(counters.dramAccesses, 1u);
    EXPECT_EQ(counters.l2Accesses, 0u);
}

TEST(MemoryHierarchy, CountersTrackLevels)
{
    PerfCounters counters;
    MemoryHierarchy::Config cfg;
    cfg.l1d = smallCache(1024, 2, 64);
    cfg.l1i = smallCache(1024, 2, 64);
    cfg.l2 = smallCache(64 * 1024, 8, 64);
    MemoryHierarchy mh(cfg, counters);

    mh.data(0, false);
    mh.data(0, false); // L1 hit
    EXPECT_EQ(counters.l1dAccesses, 2u);
    EXPECT_EQ(counters.l1dMisses, 1u);
    EXPECT_EQ(counters.l2Accesses, 1u);
    mh.fetch(0x100000);
    EXPECT_EQ(counters.l1iAccesses, 1u);
    EXPECT_EQ(counters.l1iMisses, 1u);
}

TEST(MemoryHierarchy, PrefetcherTurnsStreamIntoL2Hits)
{
    PerfCounters withPf, withoutPf;
    MemoryHierarchy::Config cfg;
    cfg.l1d = smallCache(1024, 2, 64);
    cfg.l1i = smallCache(1024, 2, 64);
    cfg.l2 = smallCache(64 * 1024, 8, 64);
    cfg.nextLinePrefetch = true;
    MemoryHierarchy pf(cfg, withPf);
    cfg.nextLinePrefetch = false;
    MemoryHierarchy nopf(cfg, withoutPf);

    for (Address a = 0; a < 32 * 1024; a += 8) {
        pf.data(a, false);
        nopf.data(a, false);
    }
    // Streaming: prefetch converts most L2 demand misses into hits.
    EXPECT_LT(withPf.l2Misses, withoutPf.l2Misses / 4);
    // Prefetch still fetches the data from DRAM (energy accounting).
    EXPECT_GT(withPf.dramAccesses, withoutPf.dramAccesses / 2);
}
