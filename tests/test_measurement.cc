/**
 * @file
 * Tests for the measurement infrastructure: component port, sense
 * resistors, DAQ, HPM sampler, ground-truth accountant, attribution and
 * energy accounting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/attribution.hh"
#include "core/component_port.hh"
#include "core/daq.hh"
#include "core/energy_accounting.hh"
#include "core/ground_truth.hh"
#include "core/hpm_sampler.hh"
#include "core/sense_resistor.hh"
#include "sim/platform.hh"

using namespace javelin;
using core::ComponentId;
using core::ComponentPort;
using core::Daq;
using core::SenseResistor;
using sim::System;

namespace {

sim::PlatformSpec
testSpec()
{
    auto spec = sim::p6Spec();
    spec.memory.l1i.sizeBytes = 4 * kKiB;
    spec.memory.l1d.sizeBytes = 4 * kKiB;
    spec.memory.l2->sizeBytes = 64 * kKiB;
    return spec;
}

void
burn(System &sys, std::uint32_t uops)
{
    sys.cpu().execute(uops, 0x1000, 64);
    sys.poll();
}

} // namespace

TEST(ComponentPort, PushPopRestores)
{
    System sys(testSpec());
    ComponentPort port(sys);
    EXPECT_EQ(port.current(), ComponentId::App);
    port.push(ComponentId::Gc);
    EXPECT_EQ(port.current(), ComponentId::Gc);
    port.push(ComponentId::ClassLoader);
    EXPECT_EQ(port.current(), ComponentId::ClassLoader);
    port.pop();
    EXPECT_EQ(port.current(), ComponentId::Gc);
    port.pop();
    EXPECT_EQ(port.current(), ComponentId::App);
}

TEST(ComponentPort, PopWithoutPushPanics)
{
    System sys(testSpec());
    ComponentPort port(sys);
    EXPECT_DEATH(port.pop(), "pop without push");
}

TEST(ComponentPort, RawWriteClearsStack)
{
    System sys(testSpec());
    ComponentPort port(sys);
    port.push(ComponentId::Gc);
    port.rawWrite(ComponentId::OptCompiler);
    EXPECT_EQ(port.current(), ComponentId::OptCompiler);
    EXPECT_EQ(port.depth(), 0u);
}

TEST(ComponentPort, ObserversSeeSwitches)
{
    System sys(testSpec());
    ComponentPort port(sys);
    std::vector<std::pair<ComponentId, ComponentId>> seen;
    port.addObserver([&](ComponentId a, ComponentId b, Tick) {
        seen.emplace_back(a, b);
    });
    port.push(ComponentId::Gc);
    port.push(ComponentId::Gc); // no change, no callback
    port.pop();
    port.pop();
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].first, ComponentId::App);
    EXPECT_EQ(seen[0].second, ComponentId::Gc);
    EXPECT_EQ(seen[1].second, ComponentId::App);
}

TEST(ComponentPort, WriteCostCharged)
{
    System sys(testSpec());
    ComponentPort charged(sys, {4.0, true});
    const auto c0 = sys.cpu().counters().cycles;
    charged.push(ComponentId::Gc);
    EXPECT_GE(sys.cpu().counters().cycles - c0, 4u);

    ComponentPort free(sys, {4.0, false});
    const auto c1 = sys.cpu().counters().cycles;
    free.push(ComponentId::Gc);
    EXPECT_EQ(sys.cpu().counters().cycles, c1);
}

TEST(ComponentScope, RaiiBracket)
{
    System sys(testSpec());
    ComponentPort port(sys);
    {
        core::ComponentScope scope(port, ComponentId::Jit);
        EXPECT_EQ(port.current(), ComponentId::Jit);
    }
    EXPECT_EQ(port.current(), ComponentId::App);
}

TEST(Component, NamesAndClassification)
{
    EXPECT_EQ(core::componentName(ComponentId::Gc), "GC");
    EXPECT_EQ(core::componentName(ComponentId::App), "App");
    EXPECT_TRUE(core::isJvmServiceComponent(ComponentId::Gc));
    EXPECT_TRUE(core::isJvmServiceComponent(ComponentId::Jit));
    EXPECT_FALSE(core::isJvmServiceComponent(ComponentId::App));
    EXPECT_FALSE(core::isJvmServiceComponent(ComponentId::Idle));
}

TEST(SenseResistor, ExactWithoutNoise)
{
    SenseResistor sr({0.01, 0.0, 0.0, 1});
    EXPECT_NEAR(sr.measureAmps(14.84, 1.484), 10.0, 1e-12);
    EXPECT_NEAR(sr.measureWatts(12.0, 1.484), 12.0, 1e-12);
}

TEST(SenseResistor, NoiseIsZeroMean)
{
    SenseResistor::Config cfg;
    cfg.resistanceOhms = 0.01;
    cfg.noiseVoltsRms = 0.001;
    SenseResistor sr(cfg);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += sr.measureWatts(12.0, 1.5);
    EXPECT_NEAR(sum / n, 12.0, 0.05);
}

TEST(SenseResistor, AdcQuantizes)
{
    SenseResistor::Config cfg;
    cfg.resistanceOhms = 0.01;
    cfg.adcLsbVolts = 0.01; // 1 A per LSB
    SenseResistor sr(cfg);
    const double amps = sr.measureAmps(12.3, 1.0);
    EXPECT_DOUBLE_EQ(amps, std::round(amps));
}

TEST(Daq, SamplesAtConfiguredPeriod)
{
    System sys(testSpec());
    ComponentPort port(sys);
    Daq::Config cfg;
    cfg.period = 40 * kTicksPerMicro;
    Daq daq(sys, port, cfg);
    while (sys.cpu().now() < 4 * kTicksPerMilli)
        burn(sys, 200);
    EXPECT_NEAR(static_cast<double>(daq.trace().size()), 100.0, 3.0);
}

TEST(Daq, MeasuredEnergyMatchesModel)
{
    System sys(testSpec());
    ComponentPort port(sys);
    Daq daq(sys, port);
    while (sys.cpu().now() < 10 * kTicksPerMilli)
        burn(sys, 500);
    const double model = sys.cpuJoules();
    const double measured = daq.measuredCpuJoules();
    // The last partial window is unsampled; allow a small gap.
    EXPECT_NEAR(measured, model, model * 0.02);
    EXPECT_NEAR(daq.measuredMemJoules(), sys.memoryJoules(),
                sys.memoryJoules() * 0.03);
}

TEST(Daq, SamplesCarryComponentId)
{
    System sys(testSpec());
    ComponentPort port(sys);
    Daq daq(sys, port);
    burn(sys, 100);
    port.push(ComponentId::Gc);
    while (sys.cpu().now() < 2 * kTicksPerMilli)
        burn(sys, 200);
    port.pop();
    int gcSamples = 0;
    for (const auto &s : daq.trace())
        gcSamples += s.component == ComponentId::Gc;
    EXPECT_GT(gcSamples, 40);
}

TEST(HpmSampler, DeltasSumToTotals)
{
    System sys(testSpec());
    ComponentPort port(sys);
    core::HpmSampler hpm(sys, port, core::HpmSampler::Config{
                                        100 * kTicksPerMicro, 64});
    while (sys.cpu().now() < 5 * kTicksPerMilli)
        burn(sys, 300);
    sim::PerfCounters sum;
    for (const auto &s : hpm.trace())
        sum += s.delta;
    // Samples cover all but the tail of the run.
    EXPECT_GE(sum.instructions,
              sys.counters().instructions * 95 / 100);
    EXPECT_LE(sum.instructions, sys.counters().instructions);
}

TEST(GroundTruth, SplitsEnergyBetweenComponents)
{
    System sys(testSpec());
    ComponentPort port(sys);
    core::GroundTruthAccountant truth(sys, port);

    while (sys.cpu().now() < kTicksPerMilli)
        burn(sys, 300);
    port.push(ComponentId::Gc);
    while (sys.cpu().now() < 2 * kTicksPerMilli)
        burn(sys, 300);
    port.pop();
    truth.finalize();

    const auto &app = truth.slice(ComponentId::App);
    const auto &gc = truth.slice(ComponentId::Gc);
    EXPECT_GT(app.cpuJoules, 0.0);
    EXPECT_GT(gc.cpuJoules, 0.0);
    EXPECT_NEAR(truth.totalCpuJoules(), sys.cpuJoules(), 1e-9);
    EXPECT_NEAR(ticksToSeconds(truth.totalTime()),
                ticksToSeconds(sys.cpu().now()), 1e-9);
    // Components ran for about the same time at the same activity.
    EXPECT_NEAR(gc.cpuJoules, app.cpuJoules, app.cpuJoules * 0.1);
}

TEST(Attribution, SampledMatchesGroundTruthOnLongPhases)
{
    System sys(testSpec());
    ComponentPort port(sys);
    Daq daq(sys, port);
    core::GroundTruthAccountant truth(sys, port);

    // Two long phases: attribution error should be tiny.
    while (sys.cpu().now() < 10 * kTicksPerMilli)
        burn(sys, 300);
    port.push(ComponentId::Gc);
    while (sys.cpu().now() < 20 * kTicksPerMilli)
        burn(sys, 300);
    port.pop();
    truth.finalize();

    const auto a = core::attribute(daq.trace(), {});
    const double gcTruth = truth.slice(ComponentId::Gc).cpuJoules;
    const double gcSampled = a.powerOf(ComponentId::Gc).cpuJoules;
    EXPECT_NEAR(gcSampled, gcTruth, gcTruth * 0.02);
    EXPECT_NEAR(a.totalCpuJoules, truth.totalCpuJoules(),
                truth.totalCpuJoules() * 0.02);
}

TEST(Attribution, FractionsSumToOne)
{
    System sys(testSpec());
    ComponentPort port(sys);
    Daq daq(sys, port);
    for (int phase = 0; phase < 6; ++phase) {
        port.push(static_cast<ComponentId>(phase % 4));
        while (sys.cpu().now() <
               static_cast<Tick>(phase + 1) * kTicksPerMilli)
            burn(sys, 250);
        port.pop();
    }
    const auto a = core::attribute(daq.trace(), {});
    double total = 0;
    for (std::size_t i = 0; i < core::kNumComponents; ++i)
        total += a.energyFraction(static_cast<ComponentId>(i));
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GE(a.peakCpuWatts, a.totalCpuJoules / a.totalSeconds);
}

TEST(Attribution, JvmFractionExcludesApp)
{
    core::PowerTrace trace;
    for (int i = 0; i < 10; ++i) {
        core::PowerSample s;
        s.tick = static_cast<Tick>(i) * 40 * kTicksPerMicro;
        s.windowTicks = 40 * kTicksPerMicro;
        s.cpuWatts = 10.0;
        s.component = i < 6 ? ComponentId::App : ComponentId::Gc;
        trace.push_back(s);
    }
    const auto a = core::attribute(trace, {});
    EXPECT_NEAR(a.jvmEnergyFraction(), 0.4, 1e-9);
    EXPECT_NEAR(a.energyFraction(ComponentId::App), 0.6, 1e-9);
}

TEST(EnergyAccounting, EdpDefinition)
{
    EXPECT_DOUBLE_EQ(core::energyDelayProduct(2.0, 3.0), 6.0);
    EXPECT_NEAR(core::relativeImprovement(10.0, 3.0), 0.7, 1e-12);
    EXPECT_DOUBLE_EQ(core::relativeImprovement(0.0, 3.0), 0.0);
}

TEST(EnergyAccounting, EdpOfAttribution)
{
    core::Attribution a;
    a.totalCpuJoules = 2.0;
    a.totalMemJoules = 0.5;
    a.totalSeconds = 4.0;
    EXPECT_DOUBLE_EQ(core::edpOf(a), 10.0);
    EXPECT_DOUBLE_EQ(core::cpuEdpOf(a), 8.0);
}
