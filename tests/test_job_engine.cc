/**
 * @file
 * Fault-injection tests for the resumable job engine.
 *
 * The central property under test: a sweep that is killed mid-run and
 * resumed produces a report BYTE-identical to an uninterrupted run, at
 * any worker count, while re-executing only the shards missing from
 * the journal. Crashes are injected two ways — the in-process
 * Config::keepGoing kill switch (deterministic commit counts, no
 * process teardown) and the JAVELIN_JOB_CRASH_AFTER SIGKILL hook
 * exercised under gtest death tests (a real dead process whose
 * journal the parent then resumes).
 *
 * Journal robustness is covered directly on the file: torn final
 * records are dropped, corruption before the tail is refused, a
 * stale scenario hash is refused, duplicate shard records resolve
 * last-write-wins, and a seeded fuzz loop runs random kill points at
 * random worker counts until the sweep completes, asserting the
 * byte-identity and the exactly-once execution of every shard.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <sstream>
#include <vector>

#include "harness/job_engine.hh"
#include "harness/scenario.hh"

using namespace javelin;
using namespace javelin::harness;

namespace {

namespace fs = std::filesystem;

/** Fresh scratch directory per test (removed and recreated). */
fs::path
scratchDir(const std::string &name)
{
    const fs::path dir =
        fs::temp_directory_path() / ("javelin_job_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/**
 * The test sweep: 2 benchmarks x 2 collectors x 3 heaps = 12 shards,
 * small enough for the fuzz loop, wide enough that partitions and
 * multi-worker runs interleave for real.
 */
Scenario
testScenario()
{
    Scenario s;
    s.name = "job-engine-test";
    s.benchmarks = {"_202_jess", "_209_db"};
    s.collectors = {jvm::CollectorKind::SemiSpace,
                    jvm::CollectorKind::GenMS};
    s.heapsMB = {32, 48, 64};
    return s;
}

/**
 * Synthetic executor: a pure deterministic function of the task's
 * (already shard-mixed) seed and configuration. The derived doubles
 * are non-terminating binary fractions (division by primes), so the
 * byte-identity assertions genuinely exercise the precision-17
 * round-trip of restored payloads, not just pretty decimals.
 */
ExperimentResult
syntheticResult(const SweepTask &task)
{
    std::uint64_t s = task.config.seed ^
                      (std::uint64_t(task.config.heapNominalMB) << 32);
    const auto next = [&s] {
        s ^= s >> 33;
        s *= 0xff51afd7ed558ccdULL;
        s ^= s >> 29;
        return s;
    };
    ExperimentResult res;
    res.config = task.config;
    res.benchmark = task.profile.name;
    res.run.startTick = 0;
    res.run.endTick = 1'000'000'000'000ULL + next() % 500'000'000'000ULL;
    res.run.bytecodesExecuted = 1'000'000 + next() % 9'000'000;
    res.run.gc.collections = next() % 23;
    res.attribution.totalCpuJoules = double(next() % 100000) / 7.0;
    res.attribution.totalMemJoules = double(next() % 100000) / 11.0;
    res.attribution.totalSeconds = res.run.seconds();
    res.attribution.power[core::componentIndex(core::ComponentId::Gc)]
        .cpuJoules = double(next() % 10000) / 13.0;
    res.attribution.power[core::componentIndex(core::ComponentId::App)]
        .cpuJoules = double(next() % 10000) / 17.0;
    res.groundTruthCpuJoules = double(next() % 100000) / 19.0;
    res.groundTruthMemJoules = double(next() % 100000) / 23.0;
    return res;
}

std::string
reportBytes(const JobReport &report)
{
    std::ostringstream os;
    writeJobReport(os, report);
    return os.str();
}

/** Uncheckpointed reference run: the bytes every variant must match. */
std::string
cleanReportBytes(const Scenario &scenario,
                 const std::vector<SweepTask> &tasks)
{
    JobEngine::Config cfg;
    cfg.jobs = 1;
    cfg.execute = syntheticResult;
    const JobReport report =
        JobEngine(cfg).run(tasks, scenario.name, scenarioHash(scenario));
    EXPECT_EQ(report.executed, tasks.size());
    EXPECT_EQ(report.restored, 0u);
    return reportBytes(report);
}

/**
 * The key a shard presents to the executor: the engine rewrites the
 * config seed to taskSeed(base, global index) before dispatch, so
 * executor-side identity checks must use the mixed seed.
 */
std::string
executedKey(const std::vector<SweepTask> &tasks, std::size_t g)
{
    SweepTask t = tasks[g];
    t.config.seed = SweepRunner::taskSeed(t.config.seed, g);
    return shardKey(t);
}

std::string
readFileBytes(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // namespace

TEST(JobEngine, ReportIsWorkerCountInvariant)
{
    const Scenario scenario = testScenario();
    const auto tasks = expandScenario(scenario);
    const std::string expected = cleanReportBytes(scenario, tasks);
    for (const unsigned jobs : {2u, 8u}) {
        JobEngine::Config cfg;
        cfg.jobs = jobs;
        cfg.execute = syntheticResult;
        const JobReport report = JobEngine(cfg).run(
            tasks, scenario.name, scenarioHash(scenario));
        EXPECT_EQ(reportBytes(report), expected)
            << "at " << jobs << " workers";
    }
}

TEST(JobEngine, CrashAndResumeIsByteIdenticalAtEveryWorkerCount)
{
    const Scenario scenario = testScenario();
    const auto tasks = expandScenario(scenario);
    const std::string hash = scenarioHash(scenario);
    const std::string expected = cleanReportBytes(scenario, tasks);

    for (const unsigned jobs : {1u, 2u, 8u}) {
        const fs::path dir =
            scratchDir("crash_resume_j" + std::to_string(jobs));
        const std::string ckpt = (dir / "journal.jsonl").string();

        // First attempt: the kill switch aborts after 5 commits (a
        // worker mid-shard still commits before observing the stop
        // flag, so >=5 records hit the journal — never all 12).
        JobEngine::Config first;
        first.jobs = jobs;
        first.execute = syntheticResult;
        first.checkpointPath = ckpt;
        first.keepGoing = [](std::size_t n) { return n < 5; };
        const JobReport crashed =
            JobEngine(first).run(tasks, scenario.name, hash);
        EXPECT_TRUE(crashed.aborted);
        EXPECT_GE(crashed.executed, 5u);
        EXPECT_LT(crashed.executed, tasks.size());

        // Resume: only the lost shards run, and the merged report is
        // byte-identical to the uninterrupted reference.
        JobEngine::Config second;
        second.jobs = jobs;
        second.execute = syntheticResult;
        second.checkpointPath = ckpt;
        second.resume = true;
        const JobReport resumed =
            JobEngine(second).run(tasks, scenario.name, hash);
        EXPECT_FALSE(resumed.aborted);
        EXPECT_EQ(resumed.restored, crashed.executed);
        EXPECT_EQ(resumed.executed, tasks.size() - crashed.executed);
        EXPECT_LT(resumed.executed, tasks.size());
        EXPECT_EQ(reportBytes(resumed), expected)
            << "at " << jobs << " workers";
    }
}

TEST(JobEngineDeathTest, CrashAfterEnvRaisesSigkill)
{
    const Scenario scenario = testScenario();
    const auto tasks = expandScenario(scenario);
    const std::string hash = scenarioHash(scenario);
    const fs::path dir = scratchDir("sigkill_env");
    const std::string ckpt = (dir / "journal.jsonl").string();

    // The child sets the env var, runs, and dies by SIGKILL after the
    // second commit — the exact failure mode the CI smoke injects.
    EXPECT_EXIT(
        {
            setenv("JAVELIN_JOB_CRASH_AFTER", "2", 1);
            JobEngine::Config cfg;
            cfg.jobs = 1;
            cfg.execute = syntheticResult;
            cfg.checkpointPath = ckpt;
            JobEngine(cfg).run(tasks, scenario.name, hash);
        },
        testing::KilledBySignal(SIGKILL), "");

    // The dead child's journal holds the header plus exactly the two
    // flushed records; the parent resumes it to a byte-identical
    // report.
    const std::string journal = readFileBytes(ckpt);
    EXPECT_EQ(std::count(journal.begin(), journal.end(), '\n'), 3);

    JobEngine::Config cfg;
    cfg.jobs = 1;
    cfg.execute = syntheticResult;
    cfg.checkpointPath = ckpt;
    cfg.resume = true;
    const JobReport resumed =
        JobEngine(cfg).run(tasks, scenario.name, hash);
    EXPECT_EQ(resumed.restored, 2u);
    EXPECT_EQ(resumed.executed, tasks.size() - 2);
    EXPECT_EQ(reportBytes(resumed), cleanReportBytes(scenario, tasks));
}

TEST(JobEngineDeathTest, ConfigCrashAfterRaisesSigkill)
{
    const Scenario scenario = testScenario();
    const auto tasks = expandScenario(scenario);
    const fs::path dir = scratchDir("sigkill_cfg");
    EXPECT_EXIT(
        {
            JobEngine::Config cfg;
            cfg.jobs = 1;
            cfg.execute = syntheticResult;
            cfg.checkpointPath = (dir / "journal.jsonl").string();
            cfg.crashAfter = 1;
            JobEngine(cfg).run(tasks, scenario.name,
                               scenarioHash(scenario));
        },
        testing::KilledBySignal(SIGKILL), "");
}

TEST(JobEngine, TornFinalRecordIsDroppedAndReExecuted)
{
    const Scenario scenario = testScenario();
    const auto tasks = expandScenario(scenario);
    const std::string hash = scenarioHash(scenario);
    const fs::path dir = scratchDir("torn_tail");
    const std::string ckpt = (dir / "journal.jsonl").string();

    JobEngine::Config cfg;
    cfg.jobs = 1;
    cfg.execute = syntheticResult;
    cfg.checkpointPath = ckpt;
    JobEngine(cfg).run(tasks, scenario.name, hash);

    // Tear the tail: chop the final record mid-line, the state a
    // crash between write and flush leaves behind.
    const std::string full = readFileBytes(ckpt);
    const std::size_t lastNl = full.rfind('\n', full.size() - 2);
    ASSERT_NE(lastNl, std::string::npos);
    fs::resize_file(ckpt, lastNl + 1 + 17);

    cfg.resume = true;
    const JobReport resumed =
        JobEngine(cfg).run(tasks, scenario.name, hash);
    EXPECT_EQ(resumed.restored, tasks.size() - 1);
    EXPECT_EQ(resumed.executed, 1u);
    EXPECT_EQ(reportBytes(resumed), cleanReportBytes(scenario, tasks));

    // The repaired journal itself is fully intact again: a second
    // resume restores everything and runs nothing.
    const JobReport again =
        JobEngine(cfg).run(tasks, scenario.name, hash);
    EXPECT_EQ(again.restored, tasks.size());
    EXPECT_EQ(again.executed, 0u);
}

TEST(JobEngine, CorruptionBeforeTheTailIsRefused)
{
    const Scenario scenario = testScenario();
    const auto tasks = expandScenario(scenario);
    const std::string hash = scenarioHash(scenario);
    const fs::path dir = scratchDir("corrupt_middle");
    const std::string ckpt = (dir / "journal.jsonl").string();

    JobEngine::Config cfg;
    cfg.jobs = 1;
    cfg.execute = syntheticResult;
    cfg.checkpointPath = ckpt;
    JobEngine(cfg).run(tasks, scenario.name, hash);

    // Smash a record in the middle. Append-only files cannot tear
    // there, so this is bit rot or tampering: refuse, don't guess.
    std::string bytes = readFileBytes(ckpt);
    bytes[bytes.size() / 2] = '\0';
    std::ofstream(ckpt, std::ios::binary) << bytes;

    cfg.resume = true;
    try {
        JobEngine(cfg).run(tasks, scenario.name, hash);
        FAIL() << "corrupt mid-file journal was accepted";
    } catch (const JobEngineError &e) {
        EXPECT_NE(std::string(e.what()).find("corrupt"),
                  std::string::npos)
            << e.what();
    }
}

TEST(JobEngine, StaleScenarioHashIsRefused)
{
    const Scenario scenario = testScenario();
    const auto tasks = expandScenario(scenario);
    const fs::path dir = scratchDir("stale_hash");
    const std::string ckpt = (dir / "journal.jsonl").string();

    JobEngine::Config cfg;
    cfg.jobs = 1;
    cfg.execute = syntheticResult;
    cfg.checkpointPath = ckpt;
    cfg.keepGoing = [](std::size_t n) { return n < 3; };
    JobEngine(cfg).run(tasks, scenario.name, scenarioHash(scenario));

    // The scenario changed under the checkpoint (here: one more heap
    // point). Merging old records into the new sweep would silently
    // mislabel shards — the engine must refuse outright.
    Scenario edited = scenario;
    edited.heapsMB.push_back(80);
    const auto editedTasks = expandScenario(edited);
    JobEngine::Config resume;
    resume.jobs = 1;
    resume.execute = syntheticResult;
    resume.checkpointPath = ckpt;
    resume.resume = true;
    try {
        JobEngine(resume).run(editedTasks, edited.name,
                              scenarioHash(edited));
        FAIL() << "stale checkpoint was merged";
    } catch (const JobEngineError &e) {
        EXPECT_NE(std::string(e.what()).find("refusing"),
                  std::string::npos)
            << e.what();
    }
}

TEST(JobEngine, ExistingCheckpointWithoutResumeIsRefused)
{
    const Scenario scenario = testScenario();
    const auto tasks = expandScenario(scenario);
    const std::string hash = scenarioHash(scenario);
    const fs::path dir = scratchDir("no_clobber");
    const std::string ckpt = (dir / "journal.jsonl").string();

    JobEngine::Config cfg;
    cfg.jobs = 1;
    cfg.execute = syntheticResult;
    cfg.checkpointPath = ckpt;
    cfg.keepGoing = [](std::size_t n) { return n < 2; };
    JobEngine(cfg).run(tasks, scenario.name, hash);

    cfg.keepGoing = nullptr;
    try {
        JobEngine(cfg).run(tasks, scenario.name, hash);
        FAIL() << "half-finished checkpoint was clobbered";
    } catch (const JobEngineError &e) {
        EXPECT_NE(std::string(e.what()).find("already exists"),
                  std::string::npos)
            << e.what();
    }
}

TEST(JobEngine, DuplicateShardRecordsResolveLastWriteWins)
{
    const Scenario scenario = testScenario();
    const auto tasks = expandScenario(scenario);
    const std::string hash = scenarioHash(scenario);
    const fs::path dir = scratchDir("dup_records");
    const std::string ckpt = (dir / "journal.jsonl").string();

    JobEngine::Config cfg;
    cfg.jobs = 1;
    cfg.execute = syntheticResult;
    cfg.checkpointPath = ckpt;
    JobEngine(cfg).run(tasks, scenario.name, hash);

    // Append a second record for shard 0 with a different payload (a
    // re-run appended after a resume raced an earlier record). The
    // later line must win.
    {
        std::ofstream app(ckpt, std::ios::binary | std::ios::app);
        app << "{\"shard\": 0, \"key\": \"" << shardKey(tasks[0])
            << "\", \"ok\": false, \"error\": \"superseded\"}\n";
    }

    cfg.resume = true;
    const JobReport resumed =
        JobEngine(cfg).run(tasks, scenario.name, hash);
    EXPECT_EQ(resumed.restored, tasks.size());
    // Journaled failures are deterministic: not re-executed.
    EXPECT_EQ(resumed.executed, 0u);
    ASSERT_FALSE(resumed.records.empty());
    EXPECT_EQ(resumed.records[0].shard, 0u);
    EXPECT_FALSE(resumed.records[0].ok);
    EXPECT_EQ(resumed.records[0].error, "superseded");
    EXPECT_EQ(resumed.failures(), 1u);
}

TEST(JobEngine, ShardPartitionsAreDisjointAndMergeByteIdentical)
{
    const Scenario scenario = testScenario();
    const auto tasks = expandScenario(scenario);
    const std::string hash = scenarioHash(scenario);
    const std::string expected = cleanReportBytes(scenario, tasks);
    const fs::path dir = scratchDir("partition");
    const std::string ckpt = (dir / "journal.jsonl").string();

    // javelin-sweep --shard i/3 against one shared checkpoint: each
    // partition executes its residue class, the last merge holds all.
    std::vector<std::size_t> executions(tasks.size(), 0);
    std::mutex mu;
    JobReport last;
    for (std::size_t part = 0; part < 3; ++part) {
        JobEngine::Config cfg;
        cfg.jobs = 2;
        cfg.checkpointPath = ckpt;
        cfg.resume = part != 0;
        cfg.shardIndex = part;
        cfg.shardCount = 3;
        cfg.execute = [&](const SweepTask &task) {
            {
                std::lock_guard<std::mutex> lock(mu);
                for (std::size_t g = 0; g < tasks.size(); ++g)
                    if (executedKey(tasks, g) == shardKey(task))
                        ++executions[g];
            }
            return syntheticResult(task);
        };
        last = JobEngine(cfg).run(tasks, scenario.name, hash);
        EXPECT_EQ(last.executed, tasks.size() / 3 +
                                     (part < tasks.size() % 3 ? 1 : 0));
    }
    for (std::size_t g = 0; g < tasks.size(); ++g)
        EXPECT_EQ(executions[g], 1u) << "shard " << g;
    EXPECT_EQ(last.records.size(), tasks.size());
    EXPECT_EQ(reportBytes(last), expected);

    EXPECT_THROW(
        JobEngine(JobEngine::Config{"", false, 0, 3, 3, {}, {}, {}, 0,
                                    ""})
            .run(tasks, scenario.name, hash),
        JobEngineError);
}

TEST(JobEngine, FailedShardsSurfaceUnderTheirKey)
{
    const Scenario scenario = testScenario();
    const auto tasks = expandScenario(scenario);
    const std::string hash = scenarioHash(scenario);
    const fs::path dir = scratchDir("failed_shard");
    const std::string ckpt = (dir / "journal.jsonl").string();
    const std::string victim = executedKey(tasks, 7);

    JobEngine::Config cfg;
    cfg.jobs = 4;
    cfg.checkpointPath = ckpt;
    cfg.execute = [&](const SweepTask &task) -> ExperimentResult {
        if (shardKey(task) == victim)
            throw std::runtime_error("injected executor failure");
        return syntheticResult(task);
    };
    const JobReport report =
        JobEngine(cfg).run(tasks, scenario.name, hash);
    EXPECT_EQ(report.failures(), 1u);
    const auto &rec = report.records[7];
    EXPECT_EQ(rec.shard, 7u);
    // Records carry the scenario-level key (base seed), not the
    // mixed per-shard seed the executor saw.
    EXPECT_EQ(rec.key, shardKey(tasks[7]));
    EXPECT_FALSE(rec.ok);
    EXPECT_EQ(rec.error, "injected executor failure");
    // The failure is in the serialized report, keyed, not swallowed.
    EXPECT_NE(reportBytes(report).find(shardKey(tasks[7])),
              std::string::npos);
    EXPECT_NE(reportBytes(report).find("injected executor failure"),
              std::string::npos);

    // A resume restores the journaled failure instead of re-running it.
    cfg.resume = true;
    cfg.execute = syntheticResult;
    const JobReport resumed =
        JobEngine(cfg).run(tasks, scenario.name, hash);
    EXPECT_EQ(resumed.executed, 0u);
    EXPECT_EQ(resumed.failures(), 1u);
}

TEST(JobEngine, FuzzRandomKillPointsAlwaysConvergeByteIdentical)
{
    const Scenario scenario = testScenario();
    const auto tasks = expandScenario(scenario);
    const std::string hash = scenarioHash(scenario);
    const std::string expected = cleanReportBytes(scenario, tasks);

    std::mt19937_64 rng(0x9e3779b97f4a7c15ULL);
    for (int iter = 0; iter < 12; ++iter) {
        const fs::path dir =
            scratchDir("fuzz_" + std::to_string(iter));
        const std::string ckpt = (dir / "journal.jsonl").string();
        std::vector<std::atomic<std::size_t>> executions(tasks.size());

        JobReport report;
        bool first = true;
        int attempts = 0;
        do {
            ASSERT_LT(attempts++, 64) << "fuzz run failed to converge";
            const std::size_t killAfter = 1 + rng() % tasks.size();
            const unsigned jobs = 1u << (rng() % 4);
            JobEngine::Config cfg;
            cfg.jobs = jobs;
            cfg.checkpointPath = ckpt;
            cfg.resume = !first;
            cfg.execute = [&](const SweepTask &task) {
                for (std::size_t g = 0; g < tasks.size(); ++g)
                    if (executedKey(tasks, g) == shardKey(task))
                        ++executions[g];
                return syntheticResult(task);
            };
            cfg.keepGoing = [killAfter](std::size_t n) {
                return n < killAfter;
            };
            report = JobEngine(cfg).run(tasks, scenario.name, hash);
            first = false;
        } while (report.records.size() < tasks.size());

        EXPECT_EQ(reportBytes(report), expected) << "iter " << iter;
        // The checkpoint makes execution exactly-once no matter where
        // the kills landed.
        for (std::size_t g = 0; g < tasks.size(); ++g)
            EXPECT_EQ(executions[g].load(), 1u)
                << "iter " << iter << " shard " << g;
    }
}

/**
 * End-to-end: the real executor (runExperiment) on a 2-shard
 * Small-dataset sweep — crash after the first shard, resume, and the
 * merged report is byte-identical to the uninterrupted run of the
 * actual simulator.
 */
TEST(JobEngine, RealExperimentCrashResumeIsByteIdentical)
{
    Scenario scenario;
    scenario.name = "job-engine-e2e";
    scenario.base.dataset = workloads::DatasetScale::Small;
    scenario.base.heapNominalMB = 32;
    scenario.base.collector = jvm::CollectorKind::SemiSpace;
    scenario.benchmarks = {"_202_jess", "_209_db"};
    const auto tasks = expandScenario(scenario);
    ASSERT_EQ(tasks.size(), 2u);
    const std::string hash = scenarioHash(scenario);

    JobEngine::Config clean;
    clean.jobs = 1;
    const std::string expected = reportBytes(
        JobEngine(clean).run(tasks, scenario.name, hash));

    const fs::path dir = scratchDir("e2e");
    JobEngine::Config cfg;
    cfg.jobs = 1;
    cfg.checkpointPath = (dir / "journal.jsonl").string();
    cfg.keepGoing = [](std::size_t n) { return n < 1; };
    const JobReport crashed =
        JobEngine(cfg).run(tasks, scenario.name, hash);
    EXPECT_TRUE(crashed.aborted);
    EXPECT_EQ(crashed.executed, 1u);

    cfg.resume = true;
    cfg.keepGoing = nullptr;
    const JobReport resumed =
        JobEngine(cfg).run(tasks, scenario.name, hash);
    EXPECT_EQ(resumed.restored, 1u);
    EXPECT_EQ(resumed.executed, 1u);
    EXPECT_EQ(reportBytes(resumed), expected);
}
