/**
 * @file
 * Tests for the batched paged KV store (util/kv_store.hh): request
 * merging per page, reopen round trips, update shadowing, extent
 * values, torn-page recovery, corruption refusal, and a randomized
 * differential fuzz against std::map across flush/reopen cycles.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <random>

#include "util/kv_store.hh"

using namespace javelin;

namespace {

namespace fs = std::filesystem;

fs::path
scratchDir(const std::string &name)
{
    const fs::path dir =
        fs::temp_directory_path() / ("javelin_kv_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::vector<char>
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
writeFile(const fs::path &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST(KvStore, BatchedPutsMergeOntoOnePage)
{
    const fs::path dir = scratchDir("merge");
    KvStore store((dir / "s.kv").string());
    // 50 small entries (~30 bytes each) fit one 4 KiB page: the whole
    // batch must cost exactly one page write — that is the
    // simple_KV_store merging property the store exists for.
    for (int i = 0; i < 50; ++i)
        store.put("key" + std::to_string(i),
                  "value" + std::to_string(i * 7));
    EXPECT_EQ(store.pendingCount(), 50u);
    EXPECT_EQ(store.flush(), 1u);
    EXPECT_EQ(store.pendingCount(), 0u);
    EXPECT_EQ(store.pageCount(), 1u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(store.get("key" + std::to_string(i)),
                  "value" + std::to_string(i * 7));
}

TEST(KvStore, ReopenRoundTripsEverything)
{
    const fs::path dir = scratchDir("reopen");
    const std::string path = (dir / "s.kv").string();
    {
        KvStore store(path);
        for (int i = 0; i < 300; ++i)
            store.put("k" + std::to_string(i),
                      std::string(static_cast<std::size_t>(i * 3),
                                  'x'));
        store.close();
    }
    KvStore store(path);
    EXPECT_EQ(store.keys().size(), 300u);
    for (int i = 0; i < 300; ++i)
        EXPECT_EQ(store.get("k" + std::to_string(i)),
                  std::string(static_cast<std::size_t>(i * 3), 'x'))
            << "key " << i;
    EXPECT_FALSE(store.get("absent").has_value());
}

TEST(KvStore, UpdatesShadowAndCompactReclaims)
{
    const fs::path dir = scratchDir("shadow");
    const std::string path = (dir / "s.kv").string();
    KvStore store(path);
    store.put("a", "first");
    store.put("b", "keep");
    store.flush();
    store.put("a", "second");
    store.flush();
    EXPECT_EQ(store.get("a"), "second");
    EXPECT_EQ(store.pageCount(), 2u);

    // Reopen: last occurrence in file order wins.
    store.close();
    {
        KvStore re(path);
        EXPECT_EQ(re.get("a"), "second");
        EXPECT_EQ(re.get("b"), "keep");

        re.compact();
        EXPECT_EQ(re.pageCount(), 1u);
        EXPECT_EQ(re.get("a"), "second");
        EXPECT_EQ(re.get("b"), "keep");
        re.close();
    }
    KvStore re2(path);
    EXPECT_EQ(re2.get("a"), "second");
    EXPECT_EQ(re2.get("b"), "keep");
}

TEST(KvStore, LargeValuesSpanExtents)
{
    const fs::path dir = scratchDir("extent");
    const std::string path = (dir / "s.kv").string();
    // A BENCH JSON is tens of KB; exercise around the page boundary
    // and well past it.
    std::map<std::string, std::string> values;
    std::mt19937_64 rng(42);
    for (const std::size_t len :
         {std::size_t(4076), std::size_t(4077), std::size_t(4085),
          std::size_t(8192), std::size_t(65536), std::size_t(200001)}) {
        std::string v(len, '\0');
        for (auto &c : v)
            c = static_cast<char>('A' + rng() % 26);
        values["len" + std::to_string(len)] = v;
    }
    {
        KvStore store(path);
        for (const auto &[k, v] : values)
            store.put(k, v);
        store.flush();
        for (const auto &[k, v] : values)
            EXPECT_EQ(store.get(k), v) << k;
        store.close();
    }
    KvStore store(path);
    for (const auto &[k, v] : values)
        EXPECT_EQ(store.get(k), v) << k;
    // Interleave a small update after the extents and reopen again.
    store.put("len8192", "tiny now");
    store.close();
    KvStore re(path);
    EXPECT_EQ(re.get("len8192"), "tiny now");
    EXPECT_EQ(re.get("len65536"), values["len65536"]);
}

TEST(KvStore, TornFinalPageIsDroppedOnOpen)
{
    const fs::path dir = scratchDir("torn");
    const std::string path = (dir / "s.kv").string();
    {
        KvStore store(path);
        store.put("stable", "value");
        store.flush();
        store.put("tail", "casualty");
        store.flush();
        store.close();
    }
    const std::vector<char> whole = readFile(path);
    ASSERT_EQ(whole.size(), 32u + 2 * KvStore::kPageBytes);

    // Truncate into the final page at several depths.
    for (const std::size_t cut :
         {std::size_t(1), KvStore::kPageBytes / 2,
          KvStore::kPageBytes - 1}) {
        std::vector<char> bytes(
            whole.begin(),
            whole.begin() +
                static_cast<long>(32 + KvStore::kPageBytes + cut));
        writeFile(path, bytes);
        KvStore store(path);
        EXPECT_EQ(store.get("stable"), "value") << "cut " << cut;
        EXPECT_FALSE(store.get("tail").has_value()) << "cut " << cut;
        // The torn tail was truncated away; appending works.
        store.put("tail", "rewritten");
        store.close();
        KvStore re(path);
        EXPECT_EQ(re.get("tail"), "rewritten") << "cut " << cut;
        EXPECT_EQ(re.get("stable"), "value") << "cut " << cut;
    }

    // A torn final extent (continuation pages missing) drops whole.
    {
        KvStore store(path);
        store.put("big", std::string(3 * KvStore::kPageBytes, 'z'));
        store.flush();
        store.close();
        const std::vector<char> full = readFile(path);
        std::vector<char> bytes(
            full.begin(),
            full.end() - static_cast<long>(KvStore::kPageBytes + 10));
        writeFile(path, bytes);
        KvStore re(path);
        EXPECT_FALSE(re.get("big").has_value());
        EXPECT_EQ(re.get("stable"), "value");
    }
}

TEST(KvStore, MidFileCorruptionThrows)
{
    const fs::path dir = scratchDir("corrupt");
    const std::string path = (dir / "s.kv").string();
    {
        KvStore store(path);
        store.put("one", "1");
        store.flush();
        store.put("two", "2");
        store.flush();
        store.put("three", "3");
        store.flush();
        store.close();
    }
    const std::vector<char> whole = readFile(path);
    ASSERT_EQ(whole.size(), 32u + 3 * KvStore::kPageBytes);

    // Flip a byte in the FIRST page: not the tail, must refuse.
    {
        std::vector<char> bytes = whole;
        bytes[32 + 100] ^= 0x5A;
        writeFile(path, bytes);
        EXPECT_THROW(KvStore store(path), KvError);
    }
    // Superblock damage is never recoverable.
    {
        std::vector<char> bytes = whole;
        bytes[2] ^= 0x5A;
        writeFile(path, bytes);
        EXPECT_THROW(KvStore store(path), KvError);
    }
    // Flip a byte in the LAST page: a torn tail, recovered.
    {
        std::vector<char> bytes = whole;
        bytes[32 + 2 * KvStore::kPageBytes + 100] ^= 0x5A;
        writeFile(path, bytes);
        KvStore store(path);
        EXPECT_EQ(store.get("one"), "1");
        EXPECT_EQ(store.get("two"), "2");
        EXPECT_FALSE(store.get("three").has_value());
    }
}

TEST(KvStore, PendingReadsSeeUnflushedValues)
{
    const fs::path dir = scratchDir("pending");
    KvStore store((dir / "s.kv").string());
    store.put("k", "v1");
    EXPECT_EQ(store.get("k"), "v1");
    EXPECT_TRUE(store.contains("k"));
    store.put("k", "v2"); // merged before paging
    EXPECT_EQ(store.get("k"), "v2");
    store.flush();
    EXPECT_EQ(store.get("k"), "v2");
    store.put("k", "v3");
    EXPECT_EQ(store.get("k"), "v3"); // pending wins over flushed
}

TEST(KvStore, RejectsEmptyAndOversizedKeys)
{
    const fs::path dir = scratchDir("badkeys");
    KvStore store((dir / "s.kv").string());
    EXPECT_THROW(store.put("", "v"), KvError);
    EXPECT_THROW(store.put(std::string(5000, 'k'), "v"), KvError);
}

/**
 * Randomized differential fuzz: random puts/updates (sizes straddling
 * the leaf/extent boundary) against a std::map oracle, with flushes
 * and full close/reopen cycles mixed in. Every key must read back
 * exactly at every stage.
 */
TEST(KvStore, DifferentialFuzzAgainstStdMap)
{
    const fs::path dir = scratchDir("fuzz");
    const std::string path = (dir / "s.kv").string();
    std::mt19937_64 rng(1234);
    std::map<std::string, std::string> oracle;

    auto store = std::make_unique<KvStore>(path);
    for (int step = 0; step < 2000; ++step) {
        const std::string key =
            "key" + std::to_string(rng() % 200);
        std::size_t len = rng() % 64;
        if (rng() % 10 == 0)
            len = 3000 + rng() % 4000; // straddle the extent boundary
        if (rng() % 50 == 0)
            len = 20000 + rng() % 20000;
        std::string value(len, '\0');
        for (auto &c : value)
            c = static_cast<char>('a' + rng() % 26);
        store->put(key, value);
        oracle[key] = value;

        if (rng() % 20 == 0)
            store->flush();
        if (rng() % 100 == 0) {
            store->close();
            store = std::make_unique<KvStore>(path);
        }
        if (rng() % 400 == 0)
            store->compact();
    }
    for (const auto &[k, v] : oracle)
        ASSERT_EQ(store->get(k), v) << k;
    store->close();
    KvStore re(path);
    ASSERT_EQ(re.keys().size(), oracle.size());
    for (const auto &[k, v] : oracle)
        ASSERT_EQ(re.get(k), v) << k;
}
