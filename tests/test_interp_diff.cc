/**
 * @file
 * Interpreter fast-path differential tests.
 *
 * The execute-batching fast path (DESIGN.md §5f) — folded segment
 * charges, the trace executor, the one-bytecode segment fall-through —
 * must be *bit-identical* to the per-op threaded dispatch it replaces,
 * under every compilation tier, not merely statistically close. This
 * suite runs full JVM workloads twice, once with
 * Interpreter::Config::fastPath on (the batched trace executor) and
 * once off (the per-op oracle, the JAVELIN_INTERP_NO_FAST_PATH mode),
 * and asserts exact equality of:
 *
 *  - every hardware performance counter (cycles and stall cycles
 *    through their double accumulators, so the floating-point
 *    accumulation grouping is part of the contract),
 *  - the integrated CPU and memory energy, to the last bit,
 *  - the periodic-task poll schedule, observed by a probe task whose
 *    firing ticks are recorded (a fast path that hoisted a poll past
 *    the tick a task came due would shift this trace),
 *  - the final heap image byte-for-byte (the call stack is empty at
 *    exit, so the return value + bytecode count pin the stack
 *    history), and
 *  - the semantic outcome and all collector statistics.
 *
 * The matrix fuzzes across workloads, heap pressures and all four
 * tiers: pure interpretation, baseline-compiled, Kaffe-style JIT, and
 * the adaptive configuration whose quantum callbacks retier methods
 * mid-trace. A final golden test pins one batched run's outcome to
 * hard constants so that a lockstep bug that changes both modes the
 * same way is still caught (regenerate with JAVELIN_GOLDEN_PRINT=1).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "jvm/jvm.hh"
#include "sim/platform.hh"
#include "workloads/program_builder.hh"
#include "workloads/suite.hh"

using namespace javelin;
using namespace javelin::jvm;

namespace {

/** One full simulated platform + JVM run in a chosen dispatch mode. */
struct InterpRig
{
    InterpRig(const Program &program, Tier tier, bool adaptive,
              CollectorKind collector, std::uint64_t heap_bytes,
              bool fast)
        : system(sim::p6Spec())
    {
        // Fires at poll points only: its tick trace IS the observable
        // poll schedule (same probe discipline as test_gc_diff).
        system.addPeriodicTask("poll-probe", 20000, [this](Tick t) {
            pollTicks.push_back(t);
        });
        JvmConfig cfg;
        cfg.kind = VmKind::Jikes;
        cfg.collector = collector;
        cfg.heapBytes = heap_bytes;
        cfg.interp.compileOnInvoke = tier;
        cfg.interp.fastPath = fast;
        cfg.adaptiveOptimization = adaptive;
        vm = std::make_unique<Jvm>(system, program, cfg);
        run = vm->run();
    }

    sim::System system;
    std::unique_ptr<Jvm> vm;
    RunResult run;
    std::vector<Tick> pollTicks;
};

#define EXPECT_COUNTER_EQ(field)                                          \
    EXPECT_EQ(ca.field, cb.field) << "counter " #field " diverged"

void
expectIdentical(InterpRig &fast, InterpRig &ref)
{
    const sim::PerfCounters &ca = fast.system.counters();
    const sim::PerfCounters &cb = ref.system.counters();
    EXPECT_COUNTER_EQ(cycles);
    EXPECT_COUNTER_EQ(instructions);
    EXPECT_COUNTER_EQ(stallCycles);
    EXPECT_COUNTER_EQ(branches);
    EXPECT_COUNTER_EQ(branchMispredicts);
    EXPECT_COUNTER_EQ(l1iAccesses);
    EXPECT_COUNTER_EQ(l1iMisses);
    EXPECT_COUNTER_EQ(l1dAccesses);
    EXPECT_COUNTER_EQ(l1dMisses);
    EXPECT_COUNTER_EQ(l2Accesses);
    EXPECT_COUNTER_EQ(l2Misses);
    EXPECT_COUNTER_EQ(l2Probes);
    EXPECT_COUNTER_EQ(dramAccesses);
    EXPECT_COUNTER_EQ(dramWritebacks);

    // Energy integrates cycles and events through doubles: exact
    // equality, not tolerance — the two dispatch modes must take
    // identical rounding paths.
    EXPECT_EQ(fast.system.cpuJoules(), ref.system.cpuJoules());
    EXPECT_EQ(fast.system.memoryJoules(), ref.system.memoryJoules());

    EXPECT_EQ(fast.pollTicks, ref.pollTicks) << "poll schedule diverged";

    // Semantics: program outcome and the full allocation/GC history.
    EXPECT_EQ(fast.run.returnValue, ref.run.returnValue);
    EXPECT_EQ(fast.run.bytecodesExecuted, ref.run.bytecodesExecuted);
    EXPECT_EQ(fast.run.outOfMemory, ref.run.outOfMemory);
    EXPECT_EQ(fast.run.classesLoaded, ref.run.classesLoaded);
    EXPECT_EQ(fast.run.methodsCompiled, ref.run.methodsCompiled);
    EXPECT_EQ(fast.run.methodsOptimized, ref.run.methodsOptimized);
    EXPECT_EQ(fast.run.gc.collections, ref.run.gc.collections);
    EXPECT_EQ(fast.run.gc.bytesAllocated, ref.run.gc.bytesAllocated);
    EXPECT_EQ(fast.run.gc.objectsAllocated, ref.run.gc.objectsAllocated);
    EXPECT_EQ(fast.run.gc.bytesCopied, ref.run.gc.bytesCopied);
    EXPECT_EQ(fast.run.gc.objectsCopied, ref.run.gc.objectsCopied);
    EXPECT_EQ(fast.run.gc.pauseTicks, ref.run.gc.pauseTicks);

    // Full final heap image: payloads, headers, free-list links.
    Heap &ha = fast.vm->heap();
    Heap &hb = ref.vm->heap();
    ASSERT_EQ(ha.size(), hb.size());
    EXPECT_EQ(0, std::memcmp(ha.ptr(ha.base()), hb.ptr(hb.base()),
                             ha.size()))
        << "heap images diverged";
}

Program
smallWorkload(const char *name, double volume)
{
    workloads::StudyScale scale =
        workloads::studyScaleFor(workloads::DatasetScale::Small);
    scale.volume = volume;
    return workloads::buildProgram(workloads::benchmark(name), scale);
}

struct TierCase
{
    const char *label;
    Tier tier;
    bool adaptive;
};

constexpr TierCase kTierCases[] = {
    {"interpreted", Tier::Interpreted, false},
    {"baseline", Tier::Baseline, false},
    {"jitted", Tier::Jitted, false},
    {"adaptive-optimizing", Tier::Baseline, true},
};

} // namespace

class InterpDiff : public testing::TestWithParam<const char *>
{
};

/** Batched vs per-op under all four tiers, two heap pressures. */
TEST_P(InterpDiff, FastPathBitIdenticalAcrossTiers)
{
    for (const double volume : {1.0 / 32.0, 1.0 / 16.0}) {
        const Program program = smallWorkload(GetParam(), volume);
        for (const TierCase &tc : kTierCases) {
            SCOPED_TRACE(testing::Message()
                         << tc.label << " volume 1/"
                         << static_cast<int>(1.0 / volume));
            InterpRig fast(program, tc.tier, tc.adaptive,
                           CollectorKind::GenCopy, 512 * kKiB, true);
            InterpRig ref(program, tc.tier, tc.adaptive,
                          CollectorKind::GenCopy, 512 * kKiB, false);
            expectIdentical(fast, ref);
        }
    }
}

/** The non-moving free-list collector exercises a different allocation
 *  path (and the PR 5 virgin-pool recycling) under both modes. */
TEST_P(InterpDiff, FastPathBitIdenticalUnderMarkSweep)
{
    const Program program = smallWorkload(GetParam(), 1.0 / 16.0);
    InterpRig fast(program, Tier::Baseline, true, CollectorKind::MarkSweep,
                   768 * kKiB, true);
    InterpRig ref(program, Tier::Baseline, true, CollectorKind::MarkSweep,
                  768 * kKiB, false);
    expectIdentical(fast, ref);
}

// call_heavy is the synthetic call-density stress (deep helper chains,
// per-iteration recursion, cold calls fanned through the dispatch
// tree): Call/Ret dominate its stream, so it leans on exactly the
// machinery the trace executor inlines — frame push/pop, the
// frame-refresh tail, the register-pool watermarks — under every tier
// and both heap pressures.
INSTANTIATE_TEST_SUITE_P(Workloads, InterpDiff,
                         testing::Values("_202_jess", "_209_db",
                                         "call_heavy"));

/**
 * Golden pin of one batched run: lockstep regressions (a model change
 * that alters both modes identically) pass the differentials above but
 * fail here. Regenerate with JAVELIN_GOLDEN_PRINT=1 ./test_interp_diff
 * after any intentional charge-model change.
 */
TEST(InterpGolden, BatchedRunPinned)
{
    const Program program = smallWorkload("_202_jess", 1.0 / 16.0);
    InterpRig rig(program, Tier::Baseline, true, CollectorKind::GenCopy,
                  512 * kKiB, true);
    const sim::PerfCounters &c = rig.system.counters();

    if (std::getenv("JAVELIN_GOLDEN_PRINT") != nullptr) {
        std::printf("    // InterpGolden.BatchedRunPinned\n"
                    "    kCycles = %lluull;\n"
                    "    kInstructions = %lluull;\n"
                    "    kL1dMisses = %lluull;\n"
                    "    kBytecodes = %lluull;\n"
                    "    kCpuJoules = %.17g;\n",
                    static_cast<unsigned long long>(c.cycles),
                    static_cast<unsigned long long>(c.instructions),
                    static_cast<unsigned long long>(c.l1dMisses),
                    static_cast<unsigned long long>(
                        rig.run.bytecodesExecuted),
                    rig.system.cpuJoules());
        GTEST_SKIP() << "golden print mode";
    }

    const std::uint64_t kCycles = 18243248ull;
    const std::uint64_t kInstructions = 22251355ull;
    const std::uint64_t kL1dMisses = 278281ull;
    const std::uint64_t kBytecodes = 2350345ull;
    const double kCpuJoules = 0.179905342331;

    EXPECT_EQ(c.cycles, kCycles);
    EXPECT_EQ(c.instructions, kInstructions);
    EXPECT_EQ(c.l1dMisses, kL1dMisses);
    EXPECT_EQ(rig.run.bytecodesExecuted, kBytecodes);
    EXPECT_EQ(rig.system.cpuJoules(), kCpuJoules);
}
