/**
 * @file
 * Tests for the parallel sweep engine: results must be bit-identical
 * to a serial run for any worker count, per-task seeds deterministic,
 * failures isolated per task, and every index visited exactly once.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <stdexcept>

#include "harness/sweep.hh"

using namespace javelin;
using namespace javelin::harness;

namespace {

std::vector<SweepTask>
smallSweep()
{
    // A mixed sweep: two benchmarks, two heaps, one noisy config so
    // the per-task RNG seeding matters.
    std::vector<SweepTask> tasks;
    for (const char *name : {"_202_jess", "_209_db"}) {
        for (const std::uint32_t heap : {32u, 64u}) {
            ExperimentConfig cfg;
            cfg.dataset = workloads::DatasetScale::Small;
            cfg.heapNominalMB = heap;
            cfg.senseNoiseVoltsRms = heap == 64 ? 0.0005 : 0.0;
            tasks.push_back({cfg, workloads::benchmark(name)});
        }
    }
    return tasks;
}

void
expectIdentical(const std::vector<SweepOutcome> &a,
                const std::vector<SweepOutcome> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_FALSE(a[i].error.failed);
        EXPECT_FALSE(b[i].error.failed);
        EXPECT_EQ(a[i].result.run.endTick, b[i].result.run.endTick);
        EXPECT_EQ(a[i].result.run.returnValue,
                  b[i].result.run.returnValue);
        EXPECT_EQ(a[i].result.run.gc.collections,
                  b[i].result.run.gc.collections);
        EXPECT_DOUBLE_EQ(a[i].result.attribution.totalCpuJoules,
                         b[i].result.attribution.totalCpuJoules);
        EXPECT_DOUBLE_EQ(a[i].result.attribution.totalMemJoules,
                         b[i].result.attribution.totalMemJoules);
        EXPECT_DOUBLE_EQ(a[i].result.groundTruthCpuJoules,
                         b[i].result.groundTruthCpuJoules);
    }
}

} // namespace

TEST(SweepRunner, ParallelResultsIdenticalToSerial)
{
    const auto tasks = smallSweep();
    SweepRunner::Config serial;
    serial.jobs = 1;
    SweepRunner::Config parallel;
    parallel.jobs = 4;
    const auto a = SweepRunner(serial).run(tasks);
    const auto b = SweepRunner(parallel).run(tasks);
    expectIdentical(a, b);
}

TEST(SweepRunner, MatchesHandWrittenSerialLoop)
{
    const auto tasks = smallSweep();
    std::vector<SweepOutcome> byHand(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        auto task = tasks[i];
        task.config.seed =
            SweepRunner::taskSeed(task.config.seed, i);
        byHand[i].result = runExperiment(task.config, task.profile);
    }
    const auto pooled = runSweep(tasks, 4);
    expectIdentical(byHand, pooled);
}

TEST(SweepRunner, TaskSeedDeterministicAndDistinct)
{
    std::set<std::uint64_t> seen;
    for (std::size_t i = 0; i < 100; ++i) {
        const auto s = SweepRunner::taskSeed(7, i);
        EXPECT_EQ(s, SweepRunner::taskSeed(7, i));
        seen.insert(s);
    }
    seen.insert(SweepRunner::taskSeed(8, 0));
    EXPECT_EQ(seen.size(), 101u);
}

TEST(SweepRunner, ExceptionCapturedPerTask)
{
    std::vector<SweepTask> tasks(3);
    for (std::uint32_t i = 0; i < 3; ++i)
        tasks[i].config.heapNominalMB = i;

    SweepRunner::Config cfg;
    cfg.jobs = 2;
    cfg.execute = [](const SweepTask &task) {
        if (task.config.heapNominalMB == 1)
            throw std::runtime_error("injected failure");
        ExperimentResult res;
        res.config = task.config;
        res.run.returnValue = task.config.heapNominalMB;
        return res;
    };
    const auto outcomes = SweepRunner(cfg).run(tasks);
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_FALSE(outcomes[0].error.failed);
    EXPECT_TRUE(outcomes[1].error.failed);
    EXPECT_EQ(outcomes[1].error.message, "injected failure");
    EXPECT_FALSE(outcomes[2].error.failed);
    EXPECT_EQ(outcomes[0].result.run.returnValue, 0u);
    EXPECT_EQ(outcomes[2].result.run.returnValue, 2u);
}

TEST(SweepRunner, ProgressReportsEveryCompletion)
{
    std::vector<SweepTask> tasks(5);
    std::vector<std::pair<std::size_t, std::size_t>> calls;
    SweepRunner::Config cfg;
    cfg.jobs = 3;
    cfg.execute = [](const SweepTask &) { return ExperimentResult(); };
    // The runner invokes progress under its own lock.
    cfg.progress = [&](std::size_t done, std::size_t total) {
        calls.emplace_back(done, total);
    };
    SweepRunner(cfg).run(tasks);
    ASSERT_EQ(calls.size(), 5u);
    for (std::size_t i = 0; i < calls.size(); ++i) {
        EXPECT_EQ(calls[i].first, i + 1);
        EXPECT_EQ(calls[i].second, 5u);
    }
}

TEST(SweepRunner, ParallelForCoversEachIndexOnce)
{
    std::vector<int> hits(97, 0);
    SweepRunner::parallelFor(
        hits.size(), [&](std::size_t i) { ++hits[i]; }, 4);
    for (const int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(SweepRunner, ResolveJobsHonorsEnvironment)
{
    EXPECT_EQ(SweepRunner::resolveJobs(5), 5u);
    ::setenv("JAVELIN_JOBS", "3", 1);
    EXPECT_EQ(SweepRunner::resolveJobs(0), 3u);
    ::setenv("JAVELIN_JOBS", "not-a-number", 1);
    EXPECT_GE(SweepRunner::resolveJobs(0), 1u);
    ::unsetenv("JAVELIN_JOBS");
    EXPECT_GE(SweepRunner::resolveJobs(0), 1u);
}
