/**
 * @file
 * Scenario-layer tests: every ExperimentConfig field round-trips
 * through the JSON form, strict validation rejects unknown keys and
 * out-of-range values with line-numbered errors, expansion order and
 * shard keys are stable, and the committed per-driver fixtures under
 * tests/fixtures/ are exactly the canonical serializations of the
 * builtin scenarios the drivers run.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "harness/scenario.hh"
#include "sim/platform.hh"

using namespace javelin;
using namespace javelin::harness;

namespace {

std::string
serialize(const Scenario &s)
{
    std::ostringstream os;
    writeScenario(os, s);
    return os.str();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Expect a ScenarioError whose message contains `needle`. */
void
expectRejected(const std::string &text, const std::string &needle)
{
    try {
        parseScenario(text);
        FAIL() << "expected rejection mentioning \"" << needle
               << "\"";
    } catch (const ScenarioError &e) {
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << "actual message: " << e.what();
    }
}

} // namespace

TEST(Scenario, EveryConfigFieldRoundTrips)
{
    Scenario s;
    s.name = "round-trip";
    s.benchmarks = {"_202_jess"};
    // Every ExperimentConfig field set away from its default.
    s.base.platform = sim::PlatformKind::Pxa255;
    s.base.vm = jvm::VmKind::Kaffe;
    s.base.collector = jvm::CollectorKind::IncrementalMS;
    s.base.heapNominalMB = 20;
    s.base.dataset = workloads::DatasetScale::Small;
    s.base.heapScale = 0.125;
    s.base.scaleCaches = false;
    s.base.daqPeriod = 12345678;
    s.base.hpmPeriod = 987654321;
    s.base.hpmIsrCostCycles = 250.5;
    s.base.senseNoiseVoltsRms = 0.00075;
    s.base.chargePortWrites = false;
    s.base.adaptiveOptimization = false;
    s.base.chargeBarrierCost = false;
    s.base.dvfsPoint = 2;
    s.base.tenants = 3;
    s.base.arrival = workloads::ArrivalKind::Bursty;
    s.base.requestRateHz = 1250.0;
    s.base.requestsPerTenant = 17;
    s.base.tenantCollectorRotate = true;
    s.base.seed = 0xdeadbeefcafef00dULL; // needs > 53 bits to survive

    const std::string text = serialize(s);
    const Scenario parsed = parseScenario(text);

    EXPECT_EQ(parsed.name, s.name);
    EXPECT_EQ(parsed.benchmarks, s.benchmarks);
    EXPECT_EQ(parsed.base.platform, s.base.platform);
    EXPECT_EQ(parsed.base.vm, s.base.vm);
    EXPECT_EQ(parsed.base.collector, s.base.collector);
    EXPECT_EQ(parsed.base.heapNominalMB, s.base.heapNominalMB);
    EXPECT_EQ(parsed.base.dataset, s.base.dataset);
    EXPECT_DOUBLE_EQ(parsed.base.heapScale, s.base.heapScale);
    EXPECT_EQ(parsed.base.scaleCaches, s.base.scaleCaches);
    EXPECT_EQ(parsed.base.daqPeriod, s.base.daqPeriod);
    EXPECT_EQ(parsed.base.hpmPeriod, s.base.hpmPeriod);
    EXPECT_DOUBLE_EQ(parsed.base.hpmIsrCostCycles,
                     s.base.hpmIsrCostCycles);
    EXPECT_DOUBLE_EQ(parsed.base.senseNoiseVoltsRms,
                     s.base.senseNoiseVoltsRms);
    EXPECT_EQ(parsed.base.chargePortWrites, s.base.chargePortWrites);
    EXPECT_EQ(parsed.base.adaptiveOptimization,
              s.base.adaptiveOptimization);
    EXPECT_EQ(parsed.base.chargeBarrierCost, s.base.chargeBarrierCost);
    EXPECT_EQ(parsed.base.dvfsPoint, s.base.dvfsPoint);
    EXPECT_EQ(parsed.base.tenants, s.base.tenants);
    EXPECT_EQ(parsed.base.arrival, s.base.arrival);
    EXPECT_DOUBLE_EQ(parsed.base.requestRateHz, s.base.requestRateHz);
    EXPECT_EQ(parsed.base.requestsPerTenant, s.base.requestsPerTenant);
    EXPECT_EQ(parsed.base.tenantCollectorRotate,
              s.base.tenantCollectorRotate);
    EXPECT_EQ(parsed.base.seed, s.base.seed);

    // Serialization is a fixed point: write(parse(write(s))) ==
    // write(s), the property the scenario hash (and therefore the
    // checkpoint stale-detection) rests on.
    EXPECT_EQ(serialize(parsed), text);
    EXPECT_EQ(scenarioHash(parsed), scenarioHash(s));
}

TEST(Scenario, AxesRoundTrip)
{
    Scenario s;
    s.name = "axes";
    s.benchmarks = {"_202_jess", "_209_db"};
    s.platforms = {sim::PlatformKind::P6, sim::PlatformKind::Pxa255};
    s.vms = {jvm::VmKind::Jikes, jvm::VmKind::Kaffe};
    s.collectors = {jvm::CollectorKind::SemiSpace,
                    jvm::CollectorKind::GenMS};
    s.heapsMB = {32, 48, 64};
    s.dvfsPoints = {-1, 0, 3};
    s.tenantCounts = {1, 2};
    s.arrivals = {workloads::ArrivalKind::Poisson,
                  workloads::ArrivalKind::Diurnal};
    s.seeds = {1, 2, 0xffffffffffffffffULL};

    const Scenario parsed = parseScenario(serialize(s));
    EXPECT_EQ(parsed.benchmarks, s.benchmarks);
    EXPECT_EQ(parsed.platforms, s.platforms);
    EXPECT_EQ(parsed.vms, s.vms);
    EXPECT_EQ(parsed.collectors, s.collectors);
    EXPECT_EQ(parsed.heapsMB, s.heapsMB);
    EXPECT_EQ(parsed.dvfsPoints, s.dvfsPoints);
    EXPECT_EQ(parsed.tenantCounts, s.tenantCounts);
    EXPECT_EQ(parsed.arrivals, s.arrivals);
    EXPECT_EQ(parsed.seeds, s.seeds);
    EXPECT_EQ(parsed.shardCount(), 2u * 2 * 2 * 2 * 3 * 3 * 2 * 2 * 3);
    EXPECT_EQ(expandScenario(parsed).size(), parsed.shardCount());
}

TEST(Scenario, UnknownKeysRejectedWithLineNumbers)
{
    // Line 4 holds the typo'd key.
    expectRejected("{\n"
                   "  \"schema\": \"javelin-scenario-v1\",\n"
                   "  \"base\": {\n"
                   "    \"heapmb\": 32\n"
                   "  },\n"
                   "  \"sweep\": {\"benchmark\": [\"_202_jess\"]}\n"
                   "}\n",
                   "line 4: unknown key \"heapmb\"");
    expectRejected("{\n"
                   "  \"schema\": \"javelin-scenario-v1\",\n"
                   "  \"swep\": {\"benchmark\": [\"_202_jess\"]}\n"
                   "}\n",
                   "line 3: unknown key \"swep\"");
    expectRejected("{\n"
                   "  \"schema\": \"javelin-scenario-v1\",\n"
                   "  \"sweep\": {\n"
                   "    \"benchmark\": [\"_202_jess\"],\n"
                   "    \"heap\": [32]\n"
                   "  }\n"
                   "}\n",
                   "line 5: unknown key \"heap\"");
}

TEST(Scenario, OutOfRangeValuesRejected)
{
    const auto doc = [](const std::string &base) {
        return "{\n\"schema\": \"javelin-scenario-v1\",\n\"base\": " +
               base +
               ",\n\"sweep\": {\"benchmark\": [\"_202_jess\"]}\n}\n";
    };
    expectRejected(doc("{\"heap_mb\": 0}"), "out of range");
    expectRejected(doc("{\"heap_mb\": 100000}"), "out of range");
    expectRejected(doc("{\"dvfs_point\": -2}"), "out of range");
    expectRejected(doc("{\"heap_scale\": 0}"), "heap_scale");
    expectRejected(doc("{\"sense_noise_volts_rms\": -0.5}"),
                   "must be >= 0");
    expectRejected(doc("{\"hpm_isr_cost_cycles\": -1}"),
                   "must be >= 0");
    expectRejected(doc("{\"seed\": -1}"), "integer");
    expectRejected(doc("{\"platform\": \"P7\"}"), "unknown platform");
    expectRejected(doc("{\"vm\": \"Hotspot\"}"), "unknown vm");
    expectRejected(doc("{\"collector\": \"G1\"}"), "unknown collector");
    expectRejected(doc("{\"dataset\": \"Huge\"}"), "unknown dataset");
}

TEST(Scenario, StructuralErrorsRejected)
{
    expectRejected("[]\n", "must be a JSON object");
    expectRejected("{\"sweep\": {\"benchmark\": [\"_202_jess\"]}}\n",
                   "missing \"schema\"");
    expectRejected("{\"schema\": \"javelin-scenario-v2\", \"sweep\": "
                   "{\"benchmark\": [\"_202_jess\"]}}\n",
                   "unsupported schema");
    expectRejected("{\"schema\": \"javelin-scenario-v1\"}\n",
                   "benchmark");
    expectRejected("{\"schema\": \"javelin-scenario-v1\", \"sweep\": "
                   "{\"benchmark\": []}}\n",
                   "must not be empty");
    expectRejected("{\"schema\": \"javelin-scenario-v1\", \"sweep\": "
                   "{\"benchmark\": [\"no_such_bench\"]}}\n",
                   "unknown benchmark");
    expectRejected("{\"schema\": \"javelin-scenario-v1\", \"sweep\": "
                   "{\"benchmark\": [\"_202_jess\", \"_202_jess\"]}}\n",
                   "duplicate value");
    // Duplicate keys come from the JSON layer but still carry a line.
    expectRejected("{\"schema\": \"javelin-scenario-v1\",\n"
                   "\"sweep\": {\"benchmark\": [\"_202_jess\"]},\n"
                   "\"sweep\": {\"benchmark\": [\"_209_db\"]}}\n",
                   "line 3: duplicate key");
}

TEST(Scenario, ExpansionOrderAndShardKeysAreStable)
{
    Scenario s;
    s.benchmarks = {"_202_jess", "_209_db"};
    s.collectors = {jvm::CollectorKind::SemiSpace,
                    jvm::CollectorKind::GenMS};
    s.heapsMB = {32, 48};
    const auto tasks = expandScenario(s);
    ASSERT_EQ(tasks.size(), 8u);
    // Benchmark-major, heap innermost: the order the compiled driver
    // loops used, so ported sweeps keep their per-task seed streams.
    EXPECT_EQ(shardKey(tasks[0]),
              "_202_jess/JikesRVM/SemiSpace/32MB/P6/dvfs-1/s7");
    EXPECT_EQ(shardKey(tasks[1]),
              "_202_jess/JikesRVM/SemiSpace/48MB/P6/dvfs-1/s7");
    EXPECT_EQ(shardKey(tasks[2]),
              "_202_jess/JikesRVM/GenMS/32MB/P6/dvfs-1/s7");
    EXPECT_EQ(shardKey(tasks[7]),
              "_209_db/JikesRVM/GenMS/48MB/P6/dvfs-1/s7");
    // Keys are unique across the expansion.
    std::set<std::string> keys;
    for (const auto &t : tasks)
        keys.insert(shardKey(t));
    EXPECT_EQ(keys.size(), tasks.size());
}

TEST(Scenario, HashDetectsAnyChange)
{
    Scenario s;
    s.benchmarks = {"_202_jess"};
    const std::string base = scenarioHash(s);
    Scenario t = s;
    t.base.seed = 8;
    EXPECT_NE(scenarioHash(t), base);
    t = s;
    t.heapsMB = {32};
    EXPECT_NE(scenarioHash(t), base);
    EXPECT_EQ(scenarioHash(s), base);
}

/**
 * The committed fixtures are byte-for-byte the canonical
 * serializations of the builtin scenarios the ported drivers run
 * (fig07_edp_collectors, abl_dvfs, ensemble_report each regenerate
 * theirs with --scenario-out).
 */
TEST(Scenario, CommittedDriverFixturesMatchBuiltins)
{
    const std::pair<const char *, const char *> fixtures[] = {
        {"fig07-edp", "fig07_edp.scenario.json"},
        {"abl-dvfs", "abl_dvfs.scenario.json"},
        {"ensemble-regression", "ensemble_regression.scenario.json"},
        {"cotenancy-interference",
         "cotenancy_interference.scenario.json"},
    };
    for (const auto &[name, file] : fixtures) {
        const std::string path =
            std::string(JAVELIN_FIXTURE_DIR) + "/" + file;
        const std::string committed = readFile(path);
        EXPECT_EQ(committed, serialize(builtinScenario(name)))
            << file << " is stale; regenerate with --scenario-out";
        // And the fixture itself parses and expands.
        const Scenario parsed = parseScenario(committed);
        EXPECT_EQ(expandScenario(parsed).size(), parsed.shardCount());
        EXPECT_GT(parsed.shardCount(), 0u);
    }
    EXPECT_EQ(builtinScenario("fig07-edp").shardCount(),
              16u * 4 * 7);
    EXPECT_EQ(builtinScenario("abl-dvfs").shardCount(),
              2 * sim::p6Spec().dvfsPoints.size());
    EXPECT_EQ(builtinScenario("ensemble-regression").shardCount(), 4u);
    // 2 benchmarks x 2 collectors x 3 tenant counts.
    EXPECT_EQ(builtinScenario("cotenancy-interference").shardCount(),
              12u);
    EXPECT_THROW(builtinScenario("no-such"), ScenarioError);
}

TEST(Scenario, SmokeScenarioFixtureParses)
{
    // The examples/ scenario the CI kill-and-resume smoke runs.
    const Scenario s = parseScenarioFile(
        std::string(JAVELIN_FIXTURE_DIR) +
        "/../../examples/scenarios/smoke.scenario.json");
    EXPECT_EQ(s.name, "smoke");
    EXPECT_EQ(s.shardCount(), 8u);
    EXPECT_EQ(s.base.dataset, workloads::DatasetScale::Small);
}
