/**
 * @file
 * Bytecode, verifier and execution-engine tests, including the
 * cross-tier differential property: the same program must compute the
 * same result under every compilation tier and every collector.
 */

#include <gtest/gtest.h>

#include "jvm/jvm.hh"
#include "jvm/method_builder.hh"
#include "sim/platform.hh"

using namespace javelin;
using namespace javelin::jvm;

namespace {

/** Program with one class and a main() built by the given function. */
Program
makeProgram(const std::function<void(Program &)> &build)
{
    Program p;
    p.name = "test";
    p.numStatics = 4;
    ClassInfo node;
    node.id = 0;
    node.name = "Node";
    node.refFields = 2;
    node.scalarFields = 2;
    p.classes.push_back(node);
    ClassInfo refArr;
    refArr.id = 1;
    refArr.name = "Object[]";
    refArr.isRefArray = true;
    p.classes.push_back(refArr);
    ClassInfo scalArr;
    scalArr.id = 2;
    scalArr.name = "long[]";
    scalArr.isScalarArray = true;
    p.classes.push_back(scalArr);
    build(p);
    p.layout();
    return p;
}

std::int64_t
runProgram(const Program &p,
           CollectorKind kind = CollectorKind::SemiSpace,
           Tier tier = Tier::Baseline, std::uint64_t heap = 512 * kKiB)
{
    sim::System system(sim::p6Spec());
    JvmConfig cfg;
    cfg.collector = kind;
    cfg.heapBytes = heap;
    cfg.interp.compileOnInvoke = tier;
    cfg.adaptiveOptimization = false;
    Jvm vm(system, p, cfg);
    const RunResult r = vm.run();
    EXPECT_FALSE(r.outOfMemory);
    EXPECT_FALSE(r.stackOverflow);
    return r.returnValue;
}

} // namespace

TEST(Bytecode, OpNamesAndDisassembly)
{
    EXPECT_STREQ(opName(Op::IAdd), "iadd");
    EXPECT_STREQ(opName(Op::PutRefElem), "putrefelem");
    Instruction in{Op::IAdd, 1, 2, 3, 0};
    EXPECT_EQ(disassemble(in), "iadd 1, 2, 3, 0");
    EXPECT_TRUE(opTouchesHeap(Op::GetField));
    EXPECT_FALSE(opTouchesHeap(Op::IAdd));
    EXPECT_TRUE(opIsRefStore(Op::PutRef));
    EXPECT_FALSE(opIsRefStore(Op::GetRef));
}

TEST(Verifier, AcceptsValidProgram)
{
    const Program p = makeProgram([](Program &prog) {
        MethodBuilder mb(prog, "main", 0);
        const auto r = mb.constant(7);
        prog.entry = mb.finishRet(r);
    });
    EXPECT_TRUE(p.verify().empty());
}

TEST(Verifier, RejectsBadRegister)
{
    const Program p = makeProgram([](Program &prog) {
        MethodBuilder mb(prog, "main", 0);
        mb.emit(Op::IAdd, 200, 0, 0); // out of range
        prog.entry = mb.finishRet(0);
    });
    EXPECT_FALSE(p.verify().empty());
}

TEST(Verifier, RejectsBadBranchTarget)
{
    const Program p = makeProgram([](Program &prog) {
        MethodBuilder mb(prog, "main", 0);
        mb.emit(Op::Goto, 999);
        prog.entry = mb.finishRet(mb.ireg());
    });
    EXPECT_FALSE(p.verify().empty());
}

TEST(Verifier, RejectsMissingTerminator)
{
    Program p = makeProgram([](Program &prog) {
        MethodInfo m;
        m.id = 0;
        m.name = "noret";
        m.holder = 0;
        m.code.push_back({Op::Nop, 0, 0, 0, 0});
        prog.methods.push_back(m);
        prog.entry = 0;
    });
    const auto errors = p.verify();
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].find("lacks ret/halt"), std::string::npos);
}

TEST(Verifier, RejectsNewOfArrayClass)
{
    const Program p = makeProgram([](Program &prog) {
        MethodBuilder mb(prog, "main", 0);
        mb.emit(Op::New, mb.rreg(), 1); // class 1 is Object[]
        prog.entry = mb.finishRet(mb.ireg());
    });
    EXPECT_FALSE(p.verify().empty());
}

TEST(Verifier, RejectsCallArityOverflow)
{
    const Program p = makeProgram([](Program &prog) {
        MethodBuilder callee(prog, "callee", 0, 4, 0);
        callee.finishRet(0);
        MethodBuilder mb(prog, "main", 0);
        // Caller has few registers; arg window falls outside.
        mb.emit(Op::Call, mb.ireg(), 0, 250, 0);
        prog.entry = mb.finishRet(mb.ireg());
    });
    EXPECT_FALSE(p.verify().empty());
}

TEST(Interpreter, Arithmetic)
{
    const Program p = makeProgram([](Program &prog) {
        MethodBuilder mb(prog, "main", 0);
        const auto a = mb.constant(21);
        const auto b = mb.constant(4);
        const auto r = mb.ireg();
        mb.emit(Op::IMul, r, a, b);  // 84
        mb.emit(Op::ISub, r, r, b);  // 80
        mb.emit(Op::IDiv, r, r, b);  // 20
        mb.emit(Op::IXor, r, r, b);  // 16
        prog.entry = mb.finishRet(r);
    });
    EXPECT_EQ(runProgram(p), 16);
}

TEST(Interpreter, DivideByZeroYieldsZero)
{
    const Program p = makeProgram([](Program &prog) {
        MethodBuilder mb(prog, "main", 0);
        const auto a = mb.constant(5);
        const auto z = mb.constant(0);
        const auto r = mb.ireg();
        mb.emit(Op::IDiv, r, a, z);
        const auto r2 = mb.ireg();
        mb.emit(Op::IRem, r2, a, z);
        mb.emit(Op::IAdd, r, r, r2);
        prog.entry = mb.finishRet(r);
    });
    EXPECT_EQ(runProgram(p), 0);
}

TEST(Interpreter, LoopSum)
{
    // sum of 0..99 = 4950
    const Program p = makeProgram([](Program &prog) {
        MethodBuilder mb(prog, "main", 0);
        const auto i = mb.ireg();
        const auto sum = mb.ireg();
        const auto one = mb.constant(1);
        const auto n = mb.constant(100);
        mb.emit(Op::IConst, i, 0);
        mb.emit(Op::IConst, sum, 0);
        const auto loop = mb.here();
        const auto exit = mb.emit(Op::IfGe, i, n, 0);
        mb.emit(Op::IAdd, sum, sum, i);
        mb.emit(Op::IAdd, i, i, one);
        mb.emit(Op::Goto, static_cast<std::int32_t>(loop));
        mb.patchTarget(exit, mb.here());
        prog.entry = mb.finishRet(sum);
    });
    EXPECT_EQ(runProgram(p), 4950);
}

TEST(Interpreter, CallPassesArgsAndReturns)
{
    const Program p = makeProgram([](Program &prog) {
        MethodBuilder add(prog, "add", 0, 2, 0);
        const auto r = add.ireg();
        add.emit(Op::IAdd, r, 0, 1);
        const MethodId addId = add.finishRet(r);

        MethodBuilder mb(prog, "main", 0);
        const auto x = mb.constant(30);
        [[maybe_unused]] const auto y = mb.constant(12);
        const auto out = mb.ireg();
        // args in consecutive registers starting at x
        mb.emit(Op::Call, out, static_cast<std::int32_t>(addId), x, 0);
        prog.entry = mb.finishRet(out);
    });
    EXPECT_EQ(runProgram(p), 42);
}

TEST(Interpreter, RecursionAndStackOverflow)
{
    const Program p = makeProgram([](Program &prog) {
        // f(n) = n == 0 ? 0 : f(n-1) + n  (runs fine for small n)
        MethodBuilder f(prog, "f", 0, 1, 0);
        const auto zero = f.constant(0);
        const auto one = f.constant(1);
        const auto r = f.ireg();
        const auto t = f.ireg();
        const auto recurse = f.emit(Op::IfNe, 0, zero, 0);
        f.emit(Op::Ret, zero);
        f.patchTarget(recurse, f.here());
        f.emit(Op::ISub, t, 0, one);
        f.emit(Op::Call, r, 0, t, 0); // method id 0 == itself
        f.emit(Op::IAdd, r, r, 0);
        const MethodId fid = f.finishRet(r);

        MethodBuilder mb(prog, "main", 0);
        const auto n = mb.constant(50);
        const auto out = mb.ireg();
        mb.emit(Op::Call, out, static_cast<std::int32_t>(fid), n, 0);
        prog.entry = mb.finishRet(out);
    });
    EXPECT_EQ(runProgram(p), 50 * 51 / 2);
}

TEST(Interpreter, StackOverflowReported)
{
    const Program p = makeProgram([](Program &prog) {
        MethodBuilder f(prog, "f", 0, 1, 0);
        const auto r = f.ireg();
        f.emit(Op::Call, r, 0, 0, 0); // infinite recursion
        const MethodId fid = f.finishRet(r);
        MethodBuilder mb(prog, "main", 0);
        const auto out = mb.ireg();
        mb.emit(Op::Call, out, static_cast<std::int32_t>(fid), 0, 0);
        prog.entry = mb.finishRet(out);
    });
    sim::System system(sim::p6Spec());
    JvmConfig cfg;
    cfg.heapBytes = 256 * kKiB;
    cfg.adaptiveOptimization = false;
    Jvm vm(system, p, cfg);
    const auto r = vm.run();
    EXPECT_TRUE(r.stackOverflow);
}

TEST(Interpreter, ObjectFieldsAndArrays)
{
    const Program p = makeProgram([](Program &prog) {
        MethodBuilder mb(prog, "main", 0);
        const auto obj = mb.rreg();
        const auto arr = mb.rreg();
        const auto v = mb.ireg();
        const auto idx = mb.constant(3);
        const auto len = mb.constant(8);
        mb.emit(Op::New, obj, 0);
        mb.emit(Op::PutField, obj, 1, idx); // scalar field 1 = 3
        mb.emit(Op::NewArray, arr, 2, len);
        mb.emit(Op::GetField, v, obj, 1);
        mb.emit(Op::PutElem, arr, idx, v);       // arr[3] = 3
        mb.emit(Op::GetElem, v, arr, idx);       // v = 3
        const auto alen = mb.ireg();
        mb.emit(Op::ArrayLen, alen, arr);
        mb.emit(Op::IAdd, v, v, alen);           // 3 + 8
        prog.entry = mb.finishRet(v);
    });
    EXPECT_EQ(runProgram(p), 11);
}

TEST(Interpreter, RefGraphAndStatics)
{
    const Program p = makeProgram([](Program &prog) {
        MethodBuilder mb(prog, "main", 0);
        const auto a = mb.rreg();
        const auto b = mb.rreg();
        const auto c = mb.rreg();
        const auto v = mb.constant(5);
        mb.emit(Op::New, a, 0);
        mb.emit(Op::New, b, 0);
        mb.emit(Op::PutField, b, 0, v);
        mb.emit(Op::PutRef, a, 0, b);
        mb.emit(Op::PutStatic, 2, a);
        mb.emit(Op::GetStatic, c, 2);
        const auto out = mb.ireg();
        mb.emit(Op::GetRef, c, c, 0);
        mb.emit(Op::GetField, out, c, 0);
        prog.entry = mb.finishRet(out);
    });
    EXPECT_EQ(runProgram(p), 5);
}

TEST(Interpreter, NullBranches)
{
    const Program p = makeProgram([](Program &prog) {
        MethodBuilder mb(prog, "main", 0);
        const auto r = mb.rreg();
        const auto out = mb.ireg();
        mb.emit(Op::IConst, out, 1);
        const auto j1 = mb.emit(Op::IfNull, r, 0); // null: taken
        mb.emit(Op::IConst, out, 99);
        mb.patchTarget(j1, mb.here());
        mb.emit(Op::New, r, 0);
        const auto j2 = mb.emit(Op::IfNotNull, r, 0); // taken
        mb.emit(Op::IConst, out, 98);
        mb.patchTarget(j2, mb.here());
        prog.entry = mb.finishRet(out);
    });
    EXPECT_EQ(runProgram(p), 1);
}

TEST(Interpreter, HaltStopsExecution)
{
    const Program p = makeProgram([](Program &prog) {
        MethodBuilder mb(prog, "main", 0);
        mb.emit(Op::Halt);
        mb.emit(Op::IConst, mb.ireg(), 7); // dead
        prog.entry = mb.finishRet(0);
    });
    EXPECT_EQ(runProgram(p), 0);
}

TEST(Interpreter, OutOfMemoryReported)
{
    const Program p = makeProgram([](Program &prog) {
        // Allocate nodes forever, keeping all of them in a static list.
        MethodBuilder mb(prog, "main", 0);
        const auto node = mb.rreg();
        const auto head = mb.rreg();
        const auto loop = mb.here();
        mb.emit(Op::New, node, 0);
        mb.emit(Op::GetStatic, head, 0);
        const auto skip = mb.emit(Op::IfNull, head, 0);
        mb.emit(Op::PutRef, node, 0, head);
        mb.patchTarget(skip, mb.here());
        mb.emit(Op::PutStatic, 0, node);
        mb.emit(Op::Goto, static_cast<std::int32_t>(loop));
        prog.entry = mb.finishHalt();
    });
    sim::System system(sim::p6Spec());
    JvmConfig cfg;
    cfg.heapBytes = 256 * kKiB;
    cfg.adaptiveOptimization = false;
    Jvm vm(system, p, cfg);
    const auto r = vm.run();
    EXPECT_TRUE(r.outOfMemory);
}

TEST(Interpreter, RandIsDeterministic)
{
    const auto build = [](Program &prog) {
        MethodBuilder mb(prog, "main", 0);
        const auto bound = mb.constant(1000);
        const auto r = mb.ireg();
        const auto sum = mb.ireg();
        const auto i = mb.ireg();
        const auto one = mb.constant(1);
        const auto n = mb.constant(50);
        mb.emit(Op::IConst, sum, 0);
        mb.emit(Op::IConst, i, 0);
        const auto loop = mb.here();
        const auto exit = mb.emit(Op::IfGe, i, n, 0);
        mb.emit(Op::Rand, r, bound);
        mb.emit(Op::IAdd, sum, sum, r);
        mb.emit(Op::IAdd, i, i, one);
        mb.emit(Op::Goto, static_cast<std::int32_t>(loop));
        mb.patchTarget(exit, mb.here());
        prog.entry = mb.finishRet(sum);
    };
    const Program p1 = makeProgram(build);
    const Program p2 = makeProgram(build);
    EXPECT_EQ(runProgram(p1), runProgram(p2));
}

/**
 * The differential property: execution semantics are identical across
 * tiers (only the cost model differs) and across collectors (GC must
 * be transparent).
 */
class TierDifferential : public testing::TestWithParam<Tier>
{
};

TEST_P(TierDifferential, GcChurnProgramSameResult)
{
    // A program that allocates, links, drops and traverses under GC
    // pressure — sensitive to any semantic divergence between tiers.
    const auto build = [](Program &prog) {
        MethodBuilder mb(prog, "main", 0);
        const auto node = mb.rreg();
        const auto head = mb.rreg();
        const auto i = mb.ireg();
        const auto v = mb.ireg();
        const auto sum = mb.ireg();
        const auto one = mb.constant(1);
        const auto n = mb.constant(4000);
        const auto seven = mb.constant(7);
        const auto t = mb.ireg();
        mb.emit(Op::IConst, i, 0);
        mb.emit(Op::IConst, sum, 0);
        const auto loop = mb.here();
        const auto exit = mb.emit(Op::IfGe, i, n, 0);
        mb.emit(Op::New, node, 0);
        mb.emit(Op::PutField, node, 0, i);
        mb.emit(Op::GetStatic, head, 1);
        const auto skip = mb.emit(Op::IfNull, head, 0);
        mb.emit(Op::PutRef, node, 0, head);
        mb.emit(Op::GetField, v, head, 0);
        mb.emit(Op::IAdd, sum, sum, v);
        mb.patchTarget(skip, mb.here());
        mb.emit(Op::PutStatic, 1, node);
        // Drop the chain every 7 iterations (mass death).
        mb.emit(Op::IRem, t, i, seven);
        const auto keep = mb.emit(Op::IfNe, t, one, 0);
        const auto nullr = mb.rreg();
        mb.emit(Op::PutStatic, 1, nullr);
        mb.patchTarget(keep, mb.here());
        mb.emit(Op::IAdd, i, i, one);
        mb.emit(Op::Goto, static_cast<std::int32_t>(loop));
        mb.patchTarget(exit, mb.here());
        prog.entry = mb.finishRet(sum);
    };

    const Program base = makeProgram(build);
    const std::int64_t expected =
        runProgram(base, CollectorKind::SemiSpace, Tier::Interpreted,
                   256 * kKiB);

    for (const auto kind :
         {CollectorKind::SemiSpace, CollectorKind::MarkSweep,
          CollectorKind::GenCopy, CollectorKind::GenMS,
          CollectorKind::IncrementalMS}) {
        const Program p = makeProgram(build);
        EXPECT_EQ(runProgram(p, kind, GetParam(), 256 * kKiB), expected)
            << "collector " << collectorName(kind) << " tier "
            << tierName(GetParam());
    }
}

INSTANTIATE_TEST_SUITE_P(AllTiers, TierDifferential,
                         testing::Values(Tier::Interpreted, Tier::Baseline,
                                         Tier::Jitted),
                         [](const testing::TestParamInfo<Tier> &info) {
                             return tierName(info.param);
                         });

TEST(Tiers, CompiledCodeIsFasterThanInterpreted)
{
    const auto build = [](Program &prog) {
        MethodBuilder mb(prog, "main", 0);
        const auto i = mb.ireg();
        const auto sum = mb.ireg();
        const auto one = mb.constant(1);
        const auto n = mb.constant(100000);
        mb.emit(Op::IConst, i, 0);
        const auto loop = mb.here();
        const auto exit = mb.emit(Op::IfGe, i, n, 0);
        mb.emit(Op::IAdd, sum, sum, i);
        mb.emit(Op::IAdd, i, i, one);
        mb.emit(Op::Goto, static_cast<std::int32_t>(loop));
        mb.patchTarget(exit, mb.here());
        prog.entry = mb.finishRet(sum);
    };

    const auto timeFor = [&](Tier tier) {
        const Program p = makeProgram(build);
        sim::System system(sim::p6Spec());
        JvmConfig cfg;
        cfg.heapBytes = 256 * kKiB;
        cfg.interp.compileOnInvoke = tier;
        cfg.adaptiveOptimization = false;
        Jvm vm(system, p, cfg);
        vm.run();
        return system.cpu().now();
    };

    const Tick interp = timeFor(Tier::Interpreted);
    const Tick baseline = timeFor(Tier::Baseline);
    const Tick jitted = timeFor(Tier::Jitted);
    EXPECT_LT(baseline, interp / 2);  // baseline much faster
    EXPECT_LT(baseline, jitted);      // Kaffe JIT slower than Jikes base
    EXPECT_LT(jitted, interp);        // but better than interpreting
}
