/**
 * @file
 * Tests for the VM services above the collector: class loader policy,
 * compiler models, the adaptive optimization system, component
 * bracketing, and the two VM personalities.
 */

#include <gtest/gtest.h>

#include "core/daq.hh"
#include "core/ground_truth.hh"
#include "jvm/jvm.hh"
#include "jvm/method_builder.hh"
#include "sim/platform.hh"
#include "workloads/program_builder.hh"
#include "workloads/suite.hh"

using namespace javelin;
using namespace javelin::jvm;

namespace {

Program
hotLoopProgram(std::uint32_t iters)
{
    Program p;
    p.name = "hotloop";
    p.numStatics = 2;
    p.bootClassCount = 2;
    for (int i = 0; i < 4; ++i) {
        ClassInfo c;
        c.id = static_cast<ClassId>(i);
        c.name = "C" + std::to_string(i);
        c.refFields = 1;
        c.scalarFields = 1;
        c.metadataBytes = 800;
        if (i >= 2 && i < 3)
            c.referencedClasses.push_back(3);
        p.classes.push_back(c);
    }

    // hot(n): tight loop.
    MethodBuilder hot(p, "hot", 2, 1, 0);
    {
        const auto i = hot.ireg();
        const auto s = hot.ireg();
        const auto one = hot.constant(1);
        hot.emit(Op::IConst, i, 0);
        const auto loop = hot.here();
        const auto exit = hot.emit(Op::IfGe, i, 0, 0);
        hot.emit(Op::IAdd, s, s, i);
        hot.emit(Op::IMul, s, s, one);
        hot.emit(Op::IXor, s, s, i);
        hot.emit(Op::IAdd, i, i, one);
        hot.emit(Op::Goto, static_cast<std::int32_t>(loop));
        hot.patchTarget(exit, hot.here());
        hot.finishRet(s);
    }

    MethodBuilder mb(p, "main", 2);
    const auto n = mb.constant(static_cast<std::int32_t>(iters));
    const auto out = mb.ireg();
    mb.emit(Op::New, mb.rreg(), 3); // force-load class 3
    mb.emit(Op::Call, out, 0, n, 0);
    p.entry = mb.finishRet(out);
    p.layout();
    return p;
}

} // namespace

TEST(ClassLoader, JikesBootClassesAreFree)
{
    const Program p = hotLoopProgram(100);
    sim::System system(sim::p6Spec());
    JvmConfig cfg;
    cfg.kind = VmKind::Jikes;
    cfg.heapBytes = 256 * kKiB;
    Jvm vm(system, p, cfg);
    EXPECT_TRUE(vm.classLoader().isLoaded(0));
    EXPECT_TRUE(vm.classLoader().isLoaded(1));
    EXPECT_FALSE(vm.classLoader().isLoaded(3));
}

TEST(ClassLoader, KaffeLoadsBootClassesAtStartup)
{
    const Program p = hotLoopProgram(100);
    sim::System system(sim::p6Spec());
    JvmConfig cfg;
    cfg.kind = VmKind::Kaffe;
    cfg.collector = CollectorKind::IncrementalMS;
    cfg.heapBytes = 256 * kKiB;
    Jvm vm(system, p, cfg);
    EXPECT_FALSE(vm.classLoader().isLoaded(0)); // lazy until run()
    vm.run();
    EXPECT_TRUE(vm.classLoader().isLoaded(0));
    EXPECT_TRUE(vm.classLoader().isLoaded(3)); // loaded by New
}

TEST(ClassLoader, LoadChargesClAndIsBracketed)
{
    const Program p = hotLoopProgram(100);
    sim::System system(sim::p6Spec());
    JvmConfig cfg;
    cfg.heapBytes = 256 * kKiB;
    Jvm vm(system, p, cfg);
    core::GroundTruthAccountant truth(system, vm.port());
    vm.run();
    truth.finalize();
    EXPECT_GT(truth.slice(core::ComponentId::ClassLoader).cpuJoules, 0.0);
    EXPECT_GT(vm.classLoader().classesLoaded(), 2u);
}

TEST(ClassLoader, LoadingIsIdempotent)
{
    const Program p = hotLoopProgram(10);
    sim::System system(sim::p6Spec());
    JvmConfig cfg;
    cfg.heapBytes = 256 * kKiB;
    Jvm vm(system, p, cfg);
    vm.classLoader().ensureLoaded(3);
    const auto cycles = system.counters().cycles;
    vm.classLoader().ensureLoaded(3);
    EXPECT_EQ(system.counters().cycles, cycles); // second load free
}

TEST(Compilers, BaselineCompilesOnFirstInvoke)
{
    const Program p = hotLoopProgram(500);
    sim::System system(sim::p6Spec());
    JvmConfig cfg;
    cfg.kind = VmKind::Jikes;
    cfg.heapBytes = 256 * kKiB;
    cfg.adaptiveOptimization = false;
    Jvm vm(system, p, cfg);
    vm.run();
    EXPECT_EQ(vm.compiler().methodsCompiled(), 2u); // main + hot
    EXPECT_EQ(vm.compiler().methodsOptimized(), 0u);
}

TEST(Compilers, KaffeUsesJit)
{
    const Program p = hotLoopProgram(500);
    sim::System system(sim::p6Spec());
    JvmConfig cfg;
    cfg.kind = VmKind::Kaffe;
    cfg.collector = CollectorKind::IncrementalMS;
    cfg.heapBytes = 256 * kKiB;
    Jvm vm(system, p, cfg);
    core::GroundTruthAccountant truth(system, vm.port());
    vm.run();
    truth.finalize();
    EXPECT_GT(truth.slice(core::ComponentId::Jit).cpuJoules, 0.0);
    EXPECT_EQ(truth.slice(core::ComponentId::BaseCompiler).cpuJoules,
              0.0);
}

TEST(Adaptive, HotMethodGetsOptimized)
{
    const Program p = hotLoopProgram(3'000'000);
    sim::System system(sim::p6Spec());
    JvmConfig cfg;
    cfg.kind = VmKind::Jikes;
    cfg.heapBytes = 256 * kKiB;
    cfg.adaptiveOptimization = true;
    Jvm vm(system, p, cfg);
    core::GroundTruthAccountant truth(system, vm.port());
    const auto r = vm.run();
    truth.finalize();
    EXPECT_FALSE(r.outOfMemory);
    EXPECT_GE(r.methodsOptimized, 1u);
    EXPECT_GT(truth.slice(core::ComponentId::OptCompiler).cpuJoules, 0.0);
    EXPECT_GT(truth.slice(core::ComponentId::Scheduler).cpuJoules, 0.0);
}

TEST(Adaptive, OptimizationPaysOffOnLongRuns)
{
    const auto timeFor = [](bool adaptive) {
        const Program p = hotLoopProgram(3'000'000);
        sim::System system(sim::p6Spec());
        JvmConfig cfg;
        cfg.heapBytes = 256 * kKiB;
        cfg.adaptiveOptimization = adaptive;
        Jvm vm(system, p, cfg);
        vm.run();
        return system.cpu().now();
    };
    EXPECT_LT(timeFor(true), timeFor(false));
}

TEST(Adaptive, ResultUnchangedByOptimization)
{
    const auto resultFor = [](bool adaptive) {
        const Program p = hotLoopProgram(2'000'000);
        sim::System system(sim::p6Spec());
        JvmConfig cfg;
        cfg.heapBytes = 256 * kKiB;
        cfg.adaptiveOptimization = adaptive;
        Jvm vm(system, p, cfg);
        return vm.run().returnValue;
    };
    EXPECT_EQ(resultFor(true), resultFor(false));
}

TEST(Jvm, GcBracketedOnPort)
{
    const Program p = workloads::buildProgram(
        workloads::benchmark("_202_jess"),
        workloads::studyScaleFor(workloads::DatasetScale::Small));
    sim::System system(sim::p6Spec());
    JvmConfig cfg;
    cfg.collector = CollectorKind::SemiSpace;
    cfg.heapBytes = 1 * kMiB;
    Jvm vm(system, p, cfg);
    core::GroundTruthAccountant truth(system, vm.port());
    const auto r = vm.run();
    truth.finalize();
    ASSERT_FALSE(r.outOfMemory);
    EXPECT_GT(r.gc.collections, 0u);
    EXPECT_GT(truth.slice(core::ComponentId::Gc).cpuJoules, 0.0);
    EXPECT_EQ(vm.port().current(), core::ComponentId::App);
    EXPECT_EQ(vm.port().depth(), 0u);
}

TEST(Jvm, RunResultBookkeeping)
{
    const Program p = hotLoopProgram(1000);
    sim::System system(sim::p6Spec());
    JvmConfig cfg;
    cfg.heapBytes = 256 * kKiB;
    Jvm vm(system, p, cfg);
    const auto r = vm.run();
    EXPECT_GT(r.bytecodesExecuted, 1000u);
    EXPECT_GT(r.endTick, r.startTick);
    EXPECT_GT(r.seconds(), 0.0);
    EXPECT_GT(r.methodsCompiled, 0u);
}

TEST(Jvm, PortWriteChargingConfigurable)
{
    const auto cyclesFor = [](bool charge) {
        const Program p = hotLoopProgram(10000);
        sim::System system(sim::p6Spec());
        JvmConfig cfg;
        cfg.heapBytes = 256 * kMiB / 256;
        cfg.chargePortWrites = charge;
        Jvm vm(system, p, cfg);
        vm.run();
        return system.counters().cycles;
    };
    EXPECT_GE(cyclesFor(true), cyclesFor(false));
}

TEST(Jvm, VmKindNames)
{
    EXPECT_STREQ(vmKindName(VmKind::Jikes), "JikesRVM");
    EXPECT_STREQ(vmKindName(VmKind::Kaffe), "Kaffe");
}
