/**
 * @file
 * Unit tests for the util library: deterministic RNG, statistics
 * accumulators, and the table builder.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace javelin;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(11);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[rng.uniformInt(8)];
    for (int count : seen)
        EXPECT_GT(count, 700); // each bucket near 1000
}

TEST(Rng, UniformRangeInclusive)
{
    Rng rng(13);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.uniformRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(17);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(19);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Rng, NormalMoments)
{
    Rng rng(23);
    RunningStat s;
    for (int i = 0; i < 20000; ++i)
        s.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.1);
    EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, SizeDrawClamped)
{
    Rng rng(29);
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.sizeDraw(64, 0.7, 16, 256);
        EXPECT_GE(v, 16u);
        EXPECT_LE(v, 256u);
    }
}

TEST(Rng, SizeDrawMeanApprox)
{
    Rng rng(31);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.sizeDraw(64, 0.5, 8, 4096));
    EXPECT_NEAR(sum / n, 64.0, 8.0);
}

TEST(Rng, ZipfSkewsLow)
{
    Rng rng(37);
    std::uint64_t low = 0, high = 0;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.zipf(100, 1.2);
        EXPECT_LT(v, 100u);
        if (v < 10)
            ++low;
        else if (v >= 50)
            ++high;
    }
    EXPECT_GT(low, high * 2);
}

TEST(Rng, ForkIndependent)
{
    Rng a(5);
    Rng b = a.fork();
    EXPECT_NE(a.next(), b.next());
}

TEST(RunningStat, Basics)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    s.add(1.0);
    s.add(2.0);
    s.add(3.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 1.0);
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(RunningStat, MergeMatchesCombined)
{
    Rng rng(41);
    RunningStat a, b, all;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.normal(0, 1);
        a.add(x);
        all.add(x);
    }
    for (int i = 0; i < 300; ++i) {
        const double x = rng.normal(5, 2);
        b.add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeEmpty)
{
    RunningStat a, b;
    a.add(2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, BinningAndPercentiles)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 100; ++i)
        h.add(i % 10 + 0.5);
    EXPECT_EQ(h.total(), 100u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    for (std::size_t b = 0; b < 10; ++b)
        EXPECT_EQ(h.binCount(b), 10u);
    EXPECT_NEAR(h.percentile(0.5), 5.0, 1.1);
}

TEST(Histogram, OutOfRange)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-1.0);
    h.add(2.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(Table, BuildAndFormat)
{
    Table t({"name", "value"});
    t.beginRow();
    t.cell("alpha").cell(static_cast<std::int64_t>(42));
    t.beginRow();
    t.cell("beta").cell(2.5, 1);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.at(0, 0), "alpha");
    EXPECT_EQ(t.at(0, 1), "42");
    EXPECT_EQ(t.at(1, 1), "2.5");

    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("alpha"), std::string::npos);

    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_NE(csv.str().find("beta,2.5"), std::string::npos);
}

TEST(Table, PercentCell)
{
    Table t({"p"});
    t.beginRow();
    t.cellPct(0.1234, 1);
    EXPECT_EQ(t.at(0, 0), "12.3%");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(JAVELIN_PANIC("boom ", 42), "boom 42");
}

TEST(LoggingDeath, AssertAborts)
{
    EXPECT_DEATH(JAVELIN_ASSERT(1 == 2, "math broke"), "math broke");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(JAVELIN_FATAL("bad config"),
                testing::ExitedWithCode(1), "bad config");
}
