/**
 * @file
 * Unit tests for the util library: deterministic RNG, statistics
 * accumulators, and the table builder.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>

#include "util/bootstrap.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace javelin;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(11);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[rng.uniformInt(8)];
    for (int count : seen)
        EXPECT_GT(count, 700); // each bucket near 1000
}

TEST(Rng, UniformRangeInclusive)
{
    Rng rng(13);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.uniformRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(17);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(19);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Rng, NormalMoments)
{
    Rng rng(23);
    RunningStat s;
    for (int i = 0; i < 20000; ++i)
        s.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.1);
    EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, SizeDrawClamped)
{
    Rng rng(29);
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.sizeDraw(64, 0.7, 16, 256);
        EXPECT_GE(v, 16u);
        EXPECT_LE(v, 256u);
    }
}

TEST(Rng, SizeDrawMeanApprox)
{
    Rng rng(31);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.sizeDraw(64, 0.5, 8, 4096));
    EXPECT_NEAR(sum / n, 64.0, 8.0);
}

TEST(Rng, ZipfSkewsLow)
{
    Rng rng(37);
    std::uint64_t low = 0, high = 0;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.zipf(100, 1.2);
        EXPECT_LT(v, 100u);
        if (v < 10)
            ++low;
        else if (v >= 50)
            ++high;
    }
    EXPECT_GT(low, high * 2);
}

namespace {

/**
 * Pearson chi-square statistic of observed counts against expected
 * probabilities (already normalized).
 */
double
chiSquare(const std::vector<std::uint64_t> &observed,
          const std::vector<double> &probability, std::uint64_t draws)
{
    double chi2 = 0.0;
    for (std::size_t k = 0; k < observed.size(); ++k) {
        const double expect =
            probability[k] * static_cast<double>(draws);
        const double diff = static_cast<double>(observed[k]) - expect;
        chi2 += diff * diff / expect;
    }
    return chi2;
}

/** Exact bounded-zipf pmf: p(k) proportional to (k+1)^-s. */
std::vector<double>
zipfPmf(std::size_t n, double s)
{
    std::vector<double> p(n);
    for (std::size_t k = 0; k < n; ++k)
        p[k] = std::pow(static_cast<double>(k + 1), -s);
    const double z = std::accumulate(p.begin(), p.end(), 0.0);
    for (double &x : p)
        x /= z;
    return p;
}

} // namespace

TEST(Rng, ZipfMatchesExactPmf)
{
    // Chi-square goodness of fit against the exact bounded pmf. The
    // 99.9% quantile of chi2 with 19 dof is 43.8; a sampler without
    // the rejection step (pure inversion of the continuous envelope)
    // fails this by orders of magnitude.
    const std::size_t n = 20;
    const std::uint64_t draws = 40000;
    for (const double s : {0.8, 1.2}) {
        Rng rng(101);
        std::vector<std::uint64_t> counts(n, 0);
        for (std::uint64_t i = 0; i < draws; ++i)
            ++counts[rng.zipf(n, s)];
        EXPECT_LT(chiSquare(counts, zipfPmf(n, s), draws), 43.8)
            << "s = " << s;
    }
}

TEST(Rng, ZipfHandlesUnitExponent)
{
    // s = 1 exercises the expm1/log1p limit forms of the
    // rejection-inversion helpers (1 - s = 0 in every exponent).
    const std::size_t n = 20;
    const std::uint64_t draws = 40000;
    Rng rng(103);
    std::vector<std::uint64_t> counts(n, 0);
    for (std::uint64_t i = 0; i < draws; ++i)
        ++counts[rng.zipf(n, 1.0)];
    EXPECT_LT(chiSquare(counts, zipfPmf(n, 1.0), draws), 43.8);
}

TEST(Rng, ZipfUniformWhenUnskewed)
{
    const std::size_t n = 16;
    const std::uint64_t draws = 32000;
    Rng rng(107);
    std::vector<std::uint64_t> counts(n, 0);
    for (std::uint64_t i = 0; i < draws; ++i)
        ++counts[rng.zipf(n, 0.0)];
    // chi2_15 at 99.9% is 37.7.
    EXPECT_LT(chiSquare(counts, zipfPmf(n, 0.0), draws), 37.7);
}

TEST(Rng, ZipfDeterministicPerSeed)
{
    Rng a(109), b(109);
    for (int i = 0; i < 2000; ++i)
        EXPECT_EQ(a.zipf(1000, 1.1), b.zipf(1000, 1.1));
}

TEST(Rng, ZipfCoversEveryRank)
{
    Rng rng(113);
    std::vector<bool> seen(5, false);
    for (int i = 0; i < 5000; ++i)
        seen[rng.zipf(5, 1.0)] = true;
    for (std::size_t k = 0; k < seen.size(); ++k)
        EXPECT_TRUE(seen[k]) << "rank " << k << " never drawn";
}

TEST(Rng, SizeDrawStableAcrossSeeds)
{
    // Homogeneity smoke test: two independent seeds must draw from the
    // same size distribution. Bucket by log2 and compare with the
    // two-sample chi-square for equal totals.
    const int draws = 20000;
    const auto bucketed = [&](std::uint64_t seed) {
        Rng rng(seed);
        std::vector<double> counts(13, 0.0);
        for (int i = 0; i < draws; ++i) {
            const auto v = rng.sizeDraw(64, 0.7, 16, 4096);
            int b = 0;
            for (auto x = v; x > 16; x /= 2)
                ++b;
            counts[static_cast<std::size_t>(b)] += 1.0;
        }
        return counts;
    };
    const auto a = bucketed(127), b = bucketed(131);
    double chi2 = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k)
        if (a[k] + b[k] > 0)
            chi2 += (a[k] - b[k]) * (a[k] - b[k]) / (a[k] + b[k]);
    // At most 12 dof; the 99.9% quantile of chi2_12 is 32.9.
    EXPECT_LT(chi2, 32.9);
}

TEST(Rng, ForkIndependent)
{
    Rng a(5);
    Rng b = a.fork();
    EXPECT_NE(a.next(), b.next());
}

TEST(RunningStat, Basics)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    s.add(1.0);
    s.add(2.0);
    s.add(3.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 1.0);
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(RunningStat, MergeMatchesCombined)
{
    Rng rng(41);
    RunningStat a, b, all;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.normal(0, 1);
        a.add(x);
        all.add(x);
    }
    for (int i = 0; i < 300; ++i) {
        const double x = rng.normal(5, 2);
        b.add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeEmpty)
{
    RunningStat a, b;
    a.add(2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStat, EmptyExtremaAreNaN)
{
    RunningStat s;
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
    s.add(4.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    s.reset();
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStat, MergeMatchesSerialUnderRandomSplits)
{
    // Fuzz the pairwise-merge identity: any partition of a stream,
    // merged in order, must agree with the serial accumulation.
    Rng rng(211);
    for (int trial = 0; trial < 25; ++trial) {
        std::vector<double> xs(200 + rng.uniformInt(200));
        for (double &x : xs)
            x = rng.bernoulli(0.3) ? rng.exponential(10.0)
                                   : rng.normal(-3.0, 2.0);
        RunningStat serial;
        for (const double x : xs)
            serial.add(x);

        RunningStat merged;
        std::size_t i = 0;
        while (i < xs.size()) {
            const std::size_t len = std::min<std::size_t>(
                1 + rng.uniformInt(40), xs.size() - i);
            RunningStat part;
            for (std::size_t j = 0; j < len; ++j)
                part.add(xs[i + j]);
            merged.merge(part);
            i += len;
        }
        ASSERT_EQ(merged.count(), serial.count());
        EXPECT_NEAR(merged.mean(), serial.mean(),
                    1e-9 * std::abs(serial.mean()) + 1e-12);
        EXPECT_NEAR(merged.variance(), serial.variance(),
                    1e-6 * serial.variance() + 1e-9);
        EXPECT_DOUBLE_EQ(merged.min(), serial.min());
        EXPECT_DOUBLE_EQ(merged.max(), serial.max());
    }
}

TEST(Histogram, BinningAndPercentiles)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 100; ++i)
        h.add(i % 10 + 0.5);
    EXPECT_EQ(h.total(), 100u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    for (std::size_t b = 0; b < 10; ++b)
        EXPECT_EQ(h.binCount(b), 10u);
    EXPECT_NEAR(h.percentile(0.5), 5.0, 1.1);
}

TEST(Histogram, OutOfRange)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-1.0);
    h.add(2.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, SingleSamplePercentile)
{
    // The old floor-rank arithmetic reported lo for every p <= 0.5 of a
    // one-sample histogram; nearest-rank must report the sample's bin.
    Histogram h(0.0, 10.0, 10);
    h.add(7.3);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 8.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 8.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 8.0);
}

TEST(Histogram, PercentileEndpoints)
{
    Histogram h(0.0, 10.0, 10);
    h.add(2.5); // bin 2, upper edge 3
    h.add(9.5); // bin 9, upper edge 10
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.0);  // rank clamps to 1
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 3.0);  // ceil(0.5 * 2) = 1
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0); // rank n
}

TEST(Histogram, PercentileAllUnderflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(-2.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
}

TEST(Histogram, PercentileEmpty)
{
    Histogram h(2.0, 10.0, 4);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 2.0);
}

TEST(Bootstrap, QuantileInterpolates)
{
    const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(quantileOf(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantileOf(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantileOf(xs, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(medianOf({5.0, 1.0, 3.0}), 3.0);
}

TEST(Bootstrap, DegenerateSamples)
{
    EXPECT_DOUBLE_EQ(meanOf({}), 0.0);
    const BootstrapCi one = bootstrapMeanCi({3.5}, 100, 0.95, 1);
    EXPECT_DOUBLE_EQ(one.point, 3.5);
    EXPECT_DOUBLE_EQ(one.lo, 3.5);
    EXPECT_DOUBLE_EQ(one.hi, 3.5);
}

TEST(Bootstrap, DeterministicPerSeed)
{
    const std::vector<double> xs = {1.0, 2.5, 2.0, 4.0, 3.5,
                                    0.5, 2.2, 3.1};
    const BootstrapCi a = bootstrapMeanCi(xs, 1000, 0.95, 77);
    const BootstrapCi b = bootstrapMeanCi(xs, 1000, 0.95, 77);
    EXPECT_DOUBLE_EQ(a.lo, b.lo);
    EXPECT_DOUBLE_EQ(a.hi, b.hi);
    EXPECT_LE(a.lo, a.point);
    EXPECT_LE(a.point, a.hi);
}

TEST(Bootstrap, CoverageNearNominal)
{
    // Frequentist check of the percentile method: across many
    // synthetic ensembles from a known normal, the 95% CI must contain
    // the true mean at close to the nominal rate. Small-sample
    // percentile bootstrap undercovers slightly, so accept [85%, 99%].
    const double trueMean = 3.0;
    int covered = 0;
    const int reps = 200;
    for (int rep = 0; rep < reps; ++rep) {
        Rng rng(1000 + static_cast<std::uint64_t>(rep));
        std::vector<double> xs(30);
        for (double &x : xs)
            x = rng.normal(trueMean, 1.0);
        const BootstrapCi ci = bootstrapMeanCi(
            xs, 400, 0.95, static_cast<std::uint64_t>(rep));
        covered += (ci.lo <= trueMean && trueMean <= ci.hi);
    }
    EXPECT_GE(covered, 170);
    EXPECT_LE(covered, 199);
}

TEST(Bootstrap, MannWhitneyVerdicts)
{
    const std::vector<double> same = {1.0, 2.0, 3.0, 4.0,
                                      5.0, 6.0, 7.0, 8.0};
    EXPECT_DOUBLE_EQ(mannWhitneyP(same, same), 1.0);
    EXPECT_DOUBLE_EQ(mannWhitneyP({}, same), 1.0);

    std::vector<double> shifted = same;
    for (double &x : shifted)
        x += 100.0;
    EXPECT_LT(mannWhitneyP(same, shifted), 0.01);
    EXPECT_DOUBLE_EQ(mannWhitneyP(same, shifted),
                     mannWhitneyP(shifted, same));
}

TEST(Bootstrap, PermutationVerdicts)
{
    const std::vector<double> a = {1.0, 1.1, 1.2, 1.3,
                                   0.9, 1.05, 1.15, 0.95};
    std::vector<double> b = a;
    for (double &x : b)
        x += 10.0;
    EXPECT_LT(permutationP(a, b, 2000, 5), 0.01);
    EXPECT_DOUBLE_EQ(permutationP(a, a, 2000, 5), 1.0);
    EXPECT_DOUBLE_EQ(permutationP(a, b, 2000, 5),
                     permutationP(a, b, 2000, 5));
}

TEST(Table, BuildAndFormat)
{
    Table t({"name", "value"});
    t.beginRow();
    t.cell("alpha").cell(static_cast<std::int64_t>(42));
    t.beginRow();
    t.cell("beta").cell(2.5, 1);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.at(0, 0), "alpha");
    EXPECT_EQ(t.at(0, 1), "42");
    EXPECT_EQ(t.at(1, 1), "2.5");

    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("alpha"), std::string::npos);

    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_NE(csv.str().find("beta,2.5"), std::string::npos);
}

TEST(Table, PercentCell)
{
    Table t({"p"});
    t.beginRow();
    t.cellPct(0.1234, 1);
    EXPECT_EQ(t.at(0, 0), "12.3%");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(JAVELIN_PANIC("boom ", 42), "boom 42");
}

TEST(LoggingDeath, AssertAborts)
{
    EXPECT_DEATH(JAVELIN_ASSERT(1 == 2, "math broke"), "math broke");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(JAVELIN_FATAL("bad config"),
                testing::ExitedWithCode(1), "bad config");
}
