/**
 * @file
 * Differential fuzzing of the cache fast path.
 *
 * The production `sim::Cache` carries an MRU memo and an inlined hit
 * path (DESIGN.md §5c). This suite keeps an independently written
 * *reference* model — recency expressed as an explicit MRU->LRU list
 * per set, no memo, no shared code — and drives both with identical
 * randomized access/prefetch/flush streams, asserting every per-access
 * `Result` and the final `Stats` agree exactly. It also proves the
 * batched `CpuModel` block accessors are event-for-event equivalent to
 * per-access loops, including simulated time to the last tick.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/cache.hh"
#include "sim/platform.hh"
#include "sim/system.hh"
#include "util/random.hh"

using namespace javelin;
using sim::Address;
using sim::Cache;

namespace {

/**
 * Oracle: set-associative write-back cache with true-LRU replacement,
 * implemented as an ordered line list per set (front = MRU). Shares no
 * code, state layout, or victim-selection logic with sim::Cache beyond
 * the documented policy.
 */
class ReferenceCache
{
  public:
    explicit ReferenceCache(const Cache::Config &config)
        : config_(config)
    {
        const auto sets = config.sizeBytes /
                          (static_cast<std::uint64_t>(config.lineBytes) *
                           config.assoc);
        sets_.resize(static_cast<std::size_t>(sets));
    }

    Cache::Result
    access(Address addr, bool is_write)
    {
        if (is_write)
            ++stats_.writes;
        else
            ++stats_.reads;

        auto &set = setFor(addr);
        const Address line = addr / config_.lineBytes;
        for (std::size_t i = 0; i < set.size(); ++i) {
            if (set[i].tag != line)
                continue;
            Line hit = set[i];
            set.erase(set.begin() + static_cast<std::ptrdiff_t>(i));
            const bool wasPrefetched = hit.prefetched;
            hit.prefetched = false;
            hit.dirty = hit.dirty || is_write;
            set.insert(set.begin(), hit); // move to MRU
            return {true, false, wasPrefetched};
        }

        if (is_write)
            ++stats_.writeMisses;
        else
            ++stats_.readMisses;
        const bool writeback = insertFront(set, {line, is_write, false});
        return {false, writeback, false};
    }

    /** @return true when the line was actually filled (not resident),
     *  mirroring sim::Cache::insertPrefetch's fill indication. */
    bool
    insertPrefetch(Address addr)
    {
        auto &set = setFor(addr);
        const Address line = addr / config_.lineBytes;
        for (const Line &l : set)
            if (l.tag == line)
                return false;
        insertFront(set, {line, false, true});
        return true;
    }

    bool
    contains(Address addr) const
    {
        const auto &set = sets_[setIndex(addr)];
        const Address line = addr / config_.lineBytes;
        return std::any_of(set.begin(), set.end(),
                           [line](const Line &l) { return l.tag == line; });
    }

    void
    flush()
    {
        for (auto &set : sets_)
            set.clear();
    }

    const Cache::Stats &stats() const { return stats_; }

  private:
    struct Line
    {
        Address tag;
        bool dirty;
        bool prefetched;
    };

    std::size_t
    setIndex(Address addr) const
    {
        return static_cast<std::size_t>((addr / config_.lineBytes) %
                                        sets_.size());
    }

    std::vector<Line> &setFor(Address addr) { return sets_[setIndex(addr)]; }

    /** Insert at MRU, evicting the LRU tail when the set is full.
     *  Returns true when the eviction wrote back a dirty line. */
    bool
    insertFront(std::vector<Line> &set, Line line)
    {
        bool writeback = false;
        if (set.size() == config_.assoc) {
            writeback = set.back().dirty;
            if (writeback)
                ++stats_.writebacks;
            set.pop_back();
        }
        set.insert(set.begin(), line);
        return writeback;
    }

    Cache::Config config_;
    Cache::Stats stats_;
    std::vector<std::vector<Line>> sets_;
};

void
expectStatsEqual(const Cache::Stats &want, const Cache::Stats &got)
{
    EXPECT_EQ(want.reads, got.reads);
    EXPECT_EQ(want.writes, got.writes);
    EXPECT_EQ(want.readMisses, got.readMisses);
    EXPECT_EQ(want.writeMisses, got.writeMisses);
    EXPECT_EQ(want.writebacks, got.writebacks);
}

/**
 * Drive both models with an identical randomized operation stream and
 * fail on the first diverging observable.
 */
void
fuzzGeometry(const Cache::Config &config, std::uint64_t ops,
             std::uint64_t seed)
{
    Cache fast(config);
    ReferenceCache ref(config);
    Rng rng(seed);

    // Address range spans several times the capacity so the stream
    // mixes capacity misses, conflict misses and hot-line reuse; a
    // biased low-bit mask re-touches recent lines often enough to
    // exercise the MRU memo continuously.
    const std::uint64_t span = config.sizeBytes * 4;
    Address hot = 0;

    for (std::uint64_t i = 0; i < ops; ++i) {
        const auto dice = rng.uniformInt(1000);
        if (dice < 800) {
            // Demand access; half the time re-touch the hot line.
            const Address a = rng.bernoulli(0.5)
                                  ? hot + rng.uniformInt(config.lineBytes)
                                  : rng.uniformInt(span);
            hot = a;
            const bool w = rng.bernoulli(0.3);
            const auto rf = fast.access(a, w);
            const auto rr = ref.access(a, w);
            ASSERT_EQ(rr.hit, rf.hit) << "op " << i << " addr " << a;
            ASSERT_EQ(rr.writeback, rf.writeback)
                << "op " << i << " addr " << a;
            ASSERT_EQ(rr.prefetchedHit, rf.prefetchedHit)
                << "op " << i << " addr " << a;
        } else if (dice < 900) {
            const Address a = rng.uniformInt(span);
            ASSERT_EQ(ref.contains(a), fast.contains(a))
                << "op " << i << " addr " << a;
        } else if (dice < 999) {
            const Address a = rng.uniformInt(span);
            const bool ff = fast.insertPrefetch(a);
            const bool rf = ref.insertPrefetch(a);
            ASSERT_EQ(rf, ff) << "op " << i << " addr " << a;
        } else {
            fast.flush();
            ref.flush();
        }
    }
    expectStatsEqual(ref.stats(), fast.stats());
}

/**
 * Prefetch-heavy stream targeting the SoA layout and the prefetch MRU
 * memo (DESIGN.md §5d): nearly half the operations are insertPrefetch,
 * biased toward the line the demand stream just touched (the memo's
 * own slot), its next line (what the hierarchy's next-line prefetcher
 * actually issues), and the demand stream ping-pongs between two lines
 * to keep both memo slots loaded. Fill indications, per-access results
 * and final stats must all agree with the list-based oracle.
 */
void
fuzzPrefetchHeavy(const Cache::Config &config, std::uint64_t ops,
                  std::uint64_t seed)
{
    Cache fast(config);
    ReferenceCache ref(config);
    Rng rng(seed);

    const std::uint64_t span = config.sizeBytes * 4;
    Address hot = 0;
    Address hot2 = config.lineBytes; // second memo slot target

    for (std::uint64_t i = 0; i < ops; ++i) {
        const auto dice = rng.uniformInt(1000);
        if (dice < 450) {
            Address a;
            switch (rng.uniformInt(4)) {
              case 0:
                a = hot; // prefetch the MRU line itself (memo hit)
                break;
              case 1:
                a = hot2; // prefetch the second memo slot
                break;
              case 2:
                a = hot + config.lineBytes; // next-line, as the
                break;                      // hierarchy issues it
              default:
                a = rng.uniformInt(span);
            }
            const bool ff = fast.insertPrefetch(a);
            const bool rf = ref.insertPrefetch(a);
            ASSERT_EQ(rf, ff) << "op " << i << " addr " << a;
        } else if (dice < 920) {
            // Demand stream ping-pongs between two hot lines so the
            // dual-slot memo stays populated with both.
            Address a;
            if (rng.bernoulli(0.6)) {
                std::swap(hot, hot2);
                a = hot + rng.uniformInt(config.lineBytes);
            } else {
                a = rng.uniformInt(span);
                hot2 = hot;
                hot = a;
            }
            const bool w = rng.bernoulli(0.3);
            const auto rf = fast.access(a, w);
            const auto rr = ref.access(a, w);
            ASSERT_EQ(rr.hit, rf.hit) << "op " << i << " addr " << a;
            ASSERT_EQ(rr.writeback, rf.writeback)
                << "op " << i << " addr " << a;
            ASSERT_EQ(rr.prefetchedHit, rf.prefetchedHit)
                << "op " << i << " addr " << a;
        } else if (dice < 995) {
            const Address a = rng.uniformInt(span);
            ASSERT_EQ(ref.contains(a), fast.contains(a))
                << "op " << i << " addr " << a;
        } else {
            fast.flush();
            ref.flush();
        }
    }
    expectStatsEqual(ref.stats(), fast.stats());
}

} // namespace

// ---------------------------------------------------------------------
// Cache-level differential fuzzing: >= 1M operations in total across
// the geometries of both platforms plus a direct-mapped worst case.
// ---------------------------------------------------------------------

TEST(CacheDiff, DirectMapped)
{
    fuzzGeometry({"dm", 16 * kKiB, 1, 64}, 400000, 0xD1FF01);
}

TEST(CacheDiff, EightWayP6Geometry)
{
    fuzzGeometry({"l1-p6", 32 * kKiB, 8, 64}, 400000, 0xD1FF02);
}

TEST(CacheDiff, ThirtyTwoWayPxaGeometry)
{
    fuzzGeometry({"l1-pxa", 32 * kKiB, 32, 32}, 300000, 0xD1FF03);
}

TEST(CacheDiff, TinyTwoWayConflictHeavy)
{
    fuzzGeometry({"tiny", 1 * kKiB, 2, 32}, 200000, 0xD1FF04);
}

// ---------------------------------------------------------------------
// Prefetch-heavy differential fuzzing against the SoA layout and the
// prefetch-side MRU memo: >= 1M additional operations, with the L2
// geometry (the only level that receives prefetch fills in production)
// plus the adversarial direct-mapped and tiny conflict-heavy shapes.
// ---------------------------------------------------------------------

TEST(CacheDiff, PrefetchHeavyL2P6Geometry)
{
    fuzzPrefetchHeavy({"l2-p6", 1 * kMiB, 8, 64}, 400000, 0xD1FF05);
}

TEST(CacheDiff, PrefetchHeavyDirectMapped)
{
    fuzzPrefetchHeavy({"dm-pf", 16 * kKiB, 1, 64}, 400000, 0xD1FF06);
}

TEST(CacheDiff, PrefetchHeavyTinyTwoWay)
{
    fuzzPrefetchHeavy({"tiny-pf", 1 * kKiB, 2, 32}, 400000, 0xD1FF07);
}

// ---------------------------------------------------------------------
// Batched accessor equivalence: every block entry point must produce
// the same counters, cache state and simulated time as the per-access
// loop it replaces.
// ---------------------------------------------------------------------

namespace {

void
expectSystemsEqual(sim::System &a, sim::System &b)
{
    const auto &ca = a.counters();
    const auto &cb = b.counters();
    EXPECT_EQ(ca.cycles, cb.cycles);
    EXPECT_EQ(ca.instructions, cb.instructions);
    EXPECT_EQ(ca.stallCycles, cb.stallCycles);
    EXPECT_EQ(ca.l1dAccesses, cb.l1dAccesses);
    EXPECT_EQ(ca.l1dMisses, cb.l1dMisses);
    EXPECT_EQ(ca.l2Accesses, cb.l2Accesses);
    EXPECT_EQ(ca.l2Misses, cb.l2Misses);
    EXPECT_EQ(ca.dramAccesses, cb.dramAccesses);
    EXPECT_EQ(ca.dramWritebacks, cb.dramWritebacks);
    EXPECT_EQ(a.cpu().now(), b.cpu().now());
}

} // namespace

TEST(BlockAccessDiff, LoadBlockMatchesLoop)
{
    sim::System batched(sim::p6Spec()), looped(sim::p6Spec());
    Rng rng(11);
    for (int round = 0; round < 2000; ++round) {
        const Address base = rng.uniformInt(1 << 22);
        const auto count = 1 + static_cast<std::uint32_t>(rng.uniformInt(32));
        const auto stride =
            static_cast<std::uint32_t>(rng.uniformInt(3) * 8);
        batched.cpu().loadBlock(base, count, stride);
        for (std::uint32_t i = 0; i < count; ++i)
            looped.cpu().load(base + static_cast<Address>(i) * stride);
    }
    expectSystemsEqual(batched, looped);
}

TEST(BlockAccessDiff, StoreBlockMatchesLoop)
{
    sim::System batched(sim::p6Spec()), looped(sim::p6Spec());
    Rng rng(13);
    for (int round = 0; round < 2000; ++round) {
        const Address base = rng.uniformInt(1 << 22);
        const auto count = 1 + static_cast<std::uint32_t>(rng.uniformInt(32));
        const auto stride =
            static_cast<std::uint32_t>(64 + rng.uniformInt(2) * 64);
        batched.cpu().storeBlock(base, count, stride);
        for (std::uint32_t i = 0; i < count; ++i)
            looped.cpu().store(base + static_cast<Address>(i) * stride);
    }
    expectSystemsEqual(batched, looped);
}

TEST(BlockAccessDiff, CopyBlockMatchesInterleavedLoop)
{
    sim::System batched(sim::p6Spec()), looped(sim::p6Spec());
    Rng rng(17);
    for (int round = 0; round < 2000; ++round) {
        const Address src = rng.uniformInt(1 << 22);
        const Address dst = (1 << 22) + rng.uniformInt(1 << 22);
        const auto bytes =
            static_cast<std::uint32_t>(16 + rng.uniformInt(512));
        batched.cpu().copyBlock(dst, src, bytes);
        for (std::uint32_t off = 0; off < bytes; off += 16) {
            looped.cpu().load(src + off);
            looped.cpu().store(dst + off);
        }
    }
    expectSystemsEqual(batched, looped);
}

// Both PXA255 (no L2) and P6 (L2 + next-line prefetcher) hierarchies.
TEST(BlockAccessDiff, NoL2PlatformMatchesToo)
{
    sim::System batched(sim::pxa255Spec()), looped(sim::pxa255Spec());
    Rng rng(19);
    for (int round = 0; round < 2000; ++round) {
        const Address base = rng.uniformInt(1 << 20);
        const auto count = 1 + static_cast<std::uint32_t>(rng.uniformInt(16));
        batched.cpu().loadBlock(base, count, 16);
        batched.cpu().copyBlock(base + (1 << 20), base, 64);
        for (std::uint32_t i = 0; i < count; ++i)
            looped.cpu().load(base + static_cast<Address>(i) * 16);
        for (std::uint32_t off = 0; off < 64; off += 16) {
            looped.cpu().load(base + off);
            looped.cpu().store(base + (1 << 20) + off);
        }
    }
    expectSystemsEqual(batched, looped);
}
