# Empty dependencies file for javelin_core.
# This may be replaced when dependencies are built.
