file(REMOVE_RECURSE
  "CMakeFiles/javelin_core.dir/attribution.cc.o"
  "CMakeFiles/javelin_core.dir/attribution.cc.o.d"
  "CMakeFiles/javelin_core.dir/component.cc.o"
  "CMakeFiles/javelin_core.dir/component.cc.o.d"
  "CMakeFiles/javelin_core.dir/component_port.cc.o"
  "CMakeFiles/javelin_core.dir/component_port.cc.o.d"
  "CMakeFiles/javelin_core.dir/daq.cc.o"
  "CMakeFiles/javelin_core.dir/daq.cc.o.d"
  "CMakeFiles/javelin_core.dir/energy_accounting.cc.o"
  "CMakeFiles/javelin_core.dir/energy_accounting.cc.o.d"
  "CMakeFiles/javelin_core.dir/ground_truth.cc.o"
  "CMakeFiles/javelin_core.dir/ground_truth.cc.o.d"
  "CMakeFiles/javelin_core.dir/hpm_sampler.cc.o"
  "CMakeFiles/javelin_core.dir/hpm_sampler.cc.o.d"
  "CMakeFiles/javelin_core.dir/sense_resistor.cc.o"
  "CMakeFiles/javelin_core.dir/sense_resistor.cc.o.d"
  "CMakeFiles/javelin_core.dir/trace_io.cc.o"
  "CMakeFiles/javelin_core.dir/trace_io.cc.o.d"
  "libjavelin_core.a"
  "libjavelin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javelin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
