file(REMOVE_RECURSE
  "libjavelin_core.a"
)
