
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attribution.cc" "src/core/CMakeFiles/javelin_core.dir/attribution.cc.o" "gcc" "src/core/CMakeFiles/javelin_core.dir/attribution.cc.o.d"
  "/root/repo/src/core/component.cc" "src/core/CMakeFiles/javelin_core.dir/component.cc.o" "gcc" "src/core/CMakeFiles/javelin_core.dir/component.cc.o.d"
  "/root/repo/src/core/component_port.cc" "src/core/CMakeFiles/javelin_core.dir/component_port.cc.o" "gcc" "src/core/CMakeFiles/javelin_core.dir/component_port.cc.o.d"
  "/root/repo/src/core/daq.cc" "src/core/CMakeFiles/javelin_core.dir/daq.cc.o" "gcc" "src/core/CMakeFiles/javelin_core.dir/daq.cc.o.d"
  "/root/repo/src/core/energy_accounting.cc" "src/core/CMakeFiles/javelin_core.dir/energy_accounting.cc.o" "gcc" "src/core/CMakeFiles/javelin_core.dir/energy_accounting.cc.o.d"
  "/root/repo/src/core/ground_truth.cc" "src/core/CMakeFiles/javelin_core.dir/ground_truth.cc.o" "gcc" "src/core/CMakeFiles/javelin_core.dir/ground_truth.cc.o.d"
  "/root/repo/src/core/hpm_sampler.cc" "src/core/CMakeFiles/javelin_core.dir/hpm_sampler.cc.o" "gcc" "src/core/CMakeFiles/javelin_core.dir/hpm_sampler.cc.o.d"
  "/root/repo/src/core/sense_resistor.cc" "src/core/CMakeFiles/javelin_core.dir/sense_resistor.cc.o" "gcc" "src/core/CMakeFiles/javelin_core.dir/sense_resistor.cc.o.d"
  "/root/repo/src/core/trace_io.cc" "src/core/CMakeFiles/javelin_core.dir/trace_io.cc.o" "gcc" "src/core/CMakeFiles/javelin_core.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/javelin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/javelin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
