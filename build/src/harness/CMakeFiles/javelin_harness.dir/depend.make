# Empty dependencies file for javelin_harness.
# This may be replaced when dependencies are built.
