file(REMOVE_RECURSE
  "libjavelin_harness.a"
)
