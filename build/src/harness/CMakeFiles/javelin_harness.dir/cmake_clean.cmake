file(REMOVE_RECURSE
  "CMakeFiles/javelin_harness.dir/experiment.cc.o"
  "CMakeFiles/javelin_harness.dir/experiment.cc.o.d"
  "CMakeFiles/javelin_harness.dir/report.cc.o"
  "CMakeFiles/javelin_harness.dir/report.cc.o.d"
  "libjavelin_harness.a"
  "libjavelin_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javelin_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
