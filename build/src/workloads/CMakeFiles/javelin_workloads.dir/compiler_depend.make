# Empty compiler generated dependencies file for javelin_workloads.
# This may be replaced when dependencies are built.
