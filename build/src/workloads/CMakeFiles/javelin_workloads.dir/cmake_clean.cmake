file(REMOVE_RECURSE
  "CMakeFiles/javelin_workloads.dir/program_builder.cc.o"
  "CMakeFiles/javelin_workloads.dir/program_builder.cc.o.d"
  "CMakeFiles/javelin_workloads.dir/suite.cc.o"
  "CMakeFiles/javelin_workloads.dir/suite.cc.o.d"
  "libjavelin_workloads.a"
  "libjavelin_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javelin_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
