file(REMOVE_RECURSE
  "libjavelin_workloads.a"
)
