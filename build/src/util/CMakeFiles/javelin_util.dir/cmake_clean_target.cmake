file(REMOVE_RECURSE
  "libjavelin_util.a"
)
