file(REMOVE_RECURSE
  "CMakeFiles/javelin_util.dir/logging.cc.o"
  "CMakeFiles/javelin_util.dir/logging.cc.o.d"
  "CMakeFiles/javelin_util.dir/random.cc.o"
  "CMakeFiles/javelin_util.dir/random.cc.o.d"
  "CMakeFiles/javelin_util.dir/stats.cc.o"
  "CMakeFiles/javelin_util.dir/stats.cc.o.d"
  "CMakeFiles/javelin_util.dir/table.cc.o"
  "CMakeFiles/javelin_util.dir/table.cc.o.d"
  "libjavelin_util.a"
  "libjavelin_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javelin_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
