# Empty dependencies file for javelin_util.
# This may be replaced when dependencies are built.
