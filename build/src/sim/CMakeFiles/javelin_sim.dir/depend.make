# Empty dependencies file for javelin_sim.
# This may be replaced when dependencies are built.
