file(REMOVE_RECURSE
  "CMakeFiles/javelin_sim.dir/cache.cc.o"
  "CMakeFiles/javelin_sim.dir/cache.cc.o.d"
  "CMakeFiles/javelin_sim.dir/cpu_model.cc.o"
  "CMakeFiles/javelin_sim.dir/cpu_model.cc.o.d"
  "CMakeFiles/javelin_sim.dir/memory_hierarchy.cc.o"
  "CMakeFiles/javelin_sim.dir/memory_hierarchy.cc.o.d"
  "CMakeFiles/javelin_sim.dir/memory_power.cc.o"
  "CMakeFiles/javelin_sim.dir/memory_power.cc.o.d"
  "CMakeFiles/javelin_sim.dir/perf_counters.cc.o"
  "CMakeFiles/javelin_sim.dir/perf_counters.cc.o.d"
  "CMakeFiles/javelin_sim.dir/platform.cc.o"
  "CMakeFiles/javelin_sim.dir/platform.cc.o.d"
  "CMakeFiles/javelin_sim.dir/power_model.cc.o"
  "CMakeFiles/javelin_sim.dir/power_model.cc.o.d"
  "CMakeFiles/javelin_sim.dir/system.cc.o"
  "CMakeFiles/javelin_sim.dir/system.cc.o.d"
  "CMakeFiles/javelin_sim.dir/thermal.cc.o"
  "CMakeFiles/javelin_sim.dir/thermal.cc.o.d"
  "libjavelin_sim.a"
  "libjavelin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javelin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
