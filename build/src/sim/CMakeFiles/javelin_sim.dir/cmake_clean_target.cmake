file(REMOVE_RECURSE
  "libjavelin_sim.a"
)
