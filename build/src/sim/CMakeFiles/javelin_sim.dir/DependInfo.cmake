
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/javelin_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/javelin_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/cpu_model.cc" "src/sim/CMakeFiles/javelin_sim.dir/cpu_model.cc.o" "gcc" "src/sim/CMakeFiles/javelin_sim.dir/cpu_model.cc.o.d"
  "/root/repo/src/sim/memory_hierarchy.cc" "src/sim/CMakeFiles/javelin_sim.dir/memory_hierarchy.cc.o" "gcc" "src/sim/CMakeFiles/javelin_sim.dir/memory_hierarchy.cc.o.d"
  "/root/repo/src/sim/memory_power.cc" "src/sim/CMakeFiles/javelin_sim.dir/memory_power.cc.o" "gcc" "src/sim/CMakeFiles/javelin_sim.dir/memory_power.cc.o.d"
  "/root/repo/src/sim/perf_counters.cc" "src/sim/CMakeFiles/javelin_sim.dir/perf_counters.cc.o" "gcc" "src/sim/CMakeFiles/javelin_sim.dir/perf_counters.cc.o.d"
  "/root/repo/src/sim/platform.cc" "src/sim/CMakeFiles/javelin_sim.dir/platform.cc.o" "gcc" "src/sim/CMakeFiles/javelin_sim.dir/platform.cc.o.d"
  "/root/repo/src/sim/power_model.cc" "src/sim/CMakeFiles/javelin_sim.dir/power_model.cc.o" "gcc" "src/sim/CMakeFiles/javelin_sim.dir/power_model.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/sim/CMakeFiles/javelin_sim.dir/system.cc.o" "gcc" "src/sim/CMakeFiles/javelin_sim.dir/system.cc.o.d"
  "/root/repo/src/sim/thermal.cc" "src/sim/CMakeFiles/javelin_sim.dir/thermal.cc.o" "gcc" "src/sim/CMakeFiles/javelin_sim.dir/thermal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/javelin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
