# Empty compiler generated dependencies file for javelin_sim.
# This may be replaced when dependencies are built.
