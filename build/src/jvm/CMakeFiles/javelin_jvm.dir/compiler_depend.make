# Empty compiler generated dependencies file for javelin_jvm.
# This may be replaced when dependencies are built.
