
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jvm/bytecode.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/bytecode.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/bytecode.cc.o.d"
  "/root/repo/src/jvm/classloader.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/classloader.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/classloader.cc.o.d"
  "/root/repo/src/jvm/compilers.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/compilers.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/compilers.cc.o.d"
  "/root/repo/src/jvm/freelist.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/freelist.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/freelist.cc.o.d"
  "/root/repo/src/jvm/gc/collector.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/collector.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/collector.cc.o.d"
  "/root/repo/src/jvm/gc/evacuator.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/evacuator.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/evacuator.cc.o.d"
  "/root/repo/src/jvm/gc/gencopy.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/gencopy.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/gencopy.cc.o.d"
  "/root/repo/src/jvm/gc/genms.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/genms.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/genms.cc.o.d"
  "/root/repo/src/jvm/gc/incremental_ms.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/incremental_ms.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/incremental_ms.cc.o.d"
  "/root/repo/src/jvm/gc/marker.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/marker.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/marker.cc.o.d"
  "/root/repo/src/jvm/gc/marksweep.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/marksweep.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/marksweep.cc.o.d"
  "/root/repo/src/jvm/gc/remset.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/remset.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/remset.cc.o.d"
  "/root/repo/src/jvm/gc/semispace.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/semispace.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/gc/semispace.cc.o.d"
  "/root/repo/src/jvm/heap.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/heap.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/heap.cc.o.d"
  "/root/repo/src/jvm/interpreter.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/interpreter.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/interpreter.cc.o.d"
  "/root/repo/src/jvm/jvm.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/jvm.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/jvm.cc.o.d"
  "/root/repo/src/jvm/object_model.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/object_model.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/object_model.cc.o.d"
  "/root/repo/src/jvm/program.cc" "src/jvm/CMakeFiles/javelin_jvm.dir/program.cc.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/javelin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/javelin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/javelin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
