file(REMOVE_RECURSE
  "libjavelin_jvm.a"
)
