file(REMOVE_RECURSE
  "CMakeFiles/test_gc.dir/test_gc.cc.o"
  "CMakeFiles/test_gc.dir/test_gc.cc.o.d"
  "test_gc"
  "test_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
