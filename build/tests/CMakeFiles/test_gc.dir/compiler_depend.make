# Empty compiler generated dependencies file for test_gc.
# This may be replaced when dependencies are built.
