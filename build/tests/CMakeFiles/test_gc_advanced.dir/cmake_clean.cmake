file(REMOVE_RECURSE
  "CMakeFiles/test_gc_advanced.dir/test_gc_advanced.cc.o"
  "CMakeFiles/test_gc_advanced.dir/test_gc_advanced.cc.o.d"
  "test_gc_advanced"
  "test_gc_advanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gc_advanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
