# Empty compiler generated dependencies file for test_gc_advanced.
# This may be replaced when dependencies are built.
