file(REMOVE_RECURSE
  "CMakeFiles/test_object_model.dir/test_object_model.cc.o"
  "CMakeFiles/test_object_model.dir/test_object_model.cc.o.d"
  "test_object_model"
  "test_object_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_object_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
