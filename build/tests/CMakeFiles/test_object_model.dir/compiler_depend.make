# Empty compiler generated dependencies file for test_object_model.
# This may be replaced when dependencies are built.
