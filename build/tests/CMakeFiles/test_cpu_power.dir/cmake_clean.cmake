file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_power.dir/test_cpu_power.cc.o"
  "CMakeFiles/test_cpu_power.dir/test_cpu_power.cc.o.d"
  "test_cpu_power"
  "test_cpu_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
