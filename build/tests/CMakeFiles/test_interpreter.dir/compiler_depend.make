# Empty compiler generated dependencies file for test_interpreter.
# This may be replaced when dependencies are built.
