file(REMOVE_RECURSE
  "CMakeFiles/test_interpreter.dir/test_interpreter.cc.o"
  "CMakeFiles/test_interpreter.dir/test_interpreter.cc.o.d"
  "test_interpreter"
  "test_interpreter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
