# Empty dependencies file for test_attribution_props.
# This may be replaced when dependencies are built.
