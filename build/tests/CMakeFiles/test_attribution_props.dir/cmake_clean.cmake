file(REMOVE_RECURSE
  "CMakeFiles/test_attribution_props.dir/test_attribution_props.cc.o"
  "CMakeFiles/test_attribution_props.dir/test_attribution_props.cc.o.d"
  "test_attribution_props"
  "test_attribution_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attribution_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
