
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_attribution_props.cc" "tests/CMakeFiles/test_attribution_props.dir/test_attribution_props.cc.o" "gcc" "tests/CMakeFiles/test_attribution_props.dir/test_attribution_props.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/javelin_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/javelin_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/javelin_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/javelin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/javelin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/javelin_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
