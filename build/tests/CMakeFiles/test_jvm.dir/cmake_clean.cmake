file(REMOVE_RECURSE
  "CMakeFiles/test_jvm.dir/test_jvm.cc.o"
  "CMakeFiles/test_jvm.dir/test_jvm.cc.o.d"
  "test_jvm"
  "test_jvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
