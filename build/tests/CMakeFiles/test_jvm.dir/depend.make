# Empty dependencies file for test_jvm.
# This may be replaced when dependencies are built.
