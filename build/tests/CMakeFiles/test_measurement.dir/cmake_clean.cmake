file(REMOVE_RECURSE
  "CMakeFiles/test_measurement.dir/test_measurement.cc.o"
  "CMakeFiles/test_measurement.dir/test_measurement.cc.o.d"
  "test_measurement"
  "test_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
