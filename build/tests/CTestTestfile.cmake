# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util "/root/repo/build/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;javelin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cache "/root/repo/build/tests/test_cache")
set_tests_properties(test_cache PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;javelin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cpu_power "/root/repo/build/tests/test_cpu_power")
set_tests_properties(test_cpu_power PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;javelin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_measurement "/root/repo/build/tests/test_measurement")
set_tests_properties(test_measurement PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;javelin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_object_model "/root/repo/build/tests/test_object_model")
set_tests_properties(test_object_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;javelin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_gc "/root/repo/build/tests/test_gc")
set_tests_properties(test_gc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;javelin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_interpreter "/root/repo/build/tests/test_interpreter")
set_tests_properties(test_interpreter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;javelin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_jvm "/root/repo/build/tests/test_jvm")
set_tests_properties(test_jvm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;javelin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workloads "/root/repo/build/tests/test_workloads")
set_tests_properties(test_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;javelin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_experiment "/root/repo/build/tests/test_experiment")
set_tests_properties(test_experiment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;javelin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_gc_advanced "/root/repo/build/tests/test_gc_advanced")
set_tests_properties(test_gc_advanced PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;javelin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_platform "/root/repo/build/tests/test_platform")
set_tests_properties(test_platform PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;javelin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_trace_io "/root/repo/build/tests/test_trace_io")
set_tests_properties(test_trace_io PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;19;javelin_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_attribution_props "/root/repo/build/tests/test_attribution_props")
set_tests_properties(test_attribution_props PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;20;javelin_test;/root/repo/tests/CMakeLists.txt;0;")
