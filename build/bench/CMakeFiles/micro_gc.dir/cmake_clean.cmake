file(REMOVE_RECURSE
  "CMakeFiles/micro_gc.dir/micro_gc.cpp.o"
  "CMakeFiles/micro_gc.dir/micro_gc.cpp.o.d"
  "micro_gc"
  "micro_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
