# Empty compiler generated dependencies file for micro_gc.
# This may be replaced when dependencies are built.
