file(REMOVE_RECURSE
  "CMakeFiles/abl_write_barrier.dir/abl_write_barrier.cpp.o"
  "CMakeFiles/abl_write_barrier.dir/abl_write_barrier.cpp.o.d"
  "abl_write_barrier"
  "abl_write_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_write_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
