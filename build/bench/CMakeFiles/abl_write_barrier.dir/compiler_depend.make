# Empty compiler generated dependencies file for abl_write_barrier.
# This may be replaced when dependencies are built.
