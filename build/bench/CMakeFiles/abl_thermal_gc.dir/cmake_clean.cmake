file(REMOVE_RECURSE
  "CMakeFiles/abl_thermal_gc.dir/abl_thermal_gc.cpp.o"
  "CMakeFiles/abl_thermal_gc.dir/abl_thermal_gc.cpp.o.d"
  "abl_thermal_gc"
  "abl_thermal_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_thermal_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
