# Empty dependencies file for abl_thermal_gc.
# This may be replaced when dependencies are built.
