file(REMOVE_RECURSE
  "CMakeFiles/fig07_edp_collectors.dir/fig07_edp_collectors.cpp.o"
  "CMakeFiles/fig07_edp_collectors.dir/fig07_edp_collectors.cpp.o.d"
  "fig07_edp_collectors"
  "fig07_edp_collectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_edp_collectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
