# Empty dependencies file for fig07_edp_collectors.
# This may be replaced when dependencies are built.
