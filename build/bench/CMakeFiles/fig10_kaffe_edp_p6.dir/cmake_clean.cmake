file(REMOVE_RECURSE
  "CMakeFiles/fig10_kaffe_edp_p6.dir/fig10_kaffe_edp_p6.cpp.o"
  "CMakeFiles/fig10_kaffe_edp_p6.dir/fig10_kaffe_edp_p6.cpp.o.d"
  "fig10_kaffe_edp_p6"
  "fig10_kaffe_edp_p6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_kaffe_edp_p6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
