# Empty dependencies file for fig10_kaffe_edp_p6.
# This may be replaced when dependencies are built.
