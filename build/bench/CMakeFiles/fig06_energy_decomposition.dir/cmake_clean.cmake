file(REMOVE_RECURSE
  "CMakeFiles/fig06_energy_decomposition.dir/fig06_energy_decomposition.cpp.o"
  "CMakeFiles/fig06_energy_decomposition.dir/fig06_energy_decomposition.cpp.o.d"
  "fig06_energy_decomposition"
  "fig06_energy_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_energy_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
