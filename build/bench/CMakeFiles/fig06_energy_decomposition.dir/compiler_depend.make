# Empty compiler generated dependencies file for fig06_energy_decomposition.
# This may be replaced when dependencies are built.
