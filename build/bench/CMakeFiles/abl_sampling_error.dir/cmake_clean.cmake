file(REMOVE_RECURSE
  "CMakeFiles/abl_sampling_error.dir/abl_sampling_error.cpp.o"
  "CMakeFiles/abl_sampling_error.dir/abl_sampling_error.cpp.o.d"
  "abl_sampling_error"
  "abl_sampling_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sampling_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
