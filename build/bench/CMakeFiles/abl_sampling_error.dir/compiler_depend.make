# Empty compiler generated dependencies file for abl_sampling_error.
# This may be replaced when dependencies are built.
