file(REMOVE_RECURSE
  "CMakeFiles/tab_component_stats.dir/tab_component_stats.cpp.o"
  "CMakeFiles/tab_component_stats.dir/tab_component_stats.cpp.o.d"
  "tab_component_stats"
  "tab_component_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_component_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
