# Empty dependencies file for tab_component_stats.
# This may be replaced when dependencies are built.
