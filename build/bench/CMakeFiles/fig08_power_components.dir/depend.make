# Empty dependencies file for fig08_power_components.
# This may be replaced when dependencies are built.
