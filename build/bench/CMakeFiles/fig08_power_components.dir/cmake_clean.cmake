file(REMOVE_RECURSE
  "CMakeFiles/fig08_power_components.dir/fig08_power_components.cpp.o"
  "CMakeFiles/fig08_power_components.dir/fig08_power_components.cpp.o.d"
  "fig08_power_components"
  "fig08_power_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_power_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
