# Empty dependencies file for fig11_kaffe_energy_pxa255.
# This may be replaced when dependencies are built.
