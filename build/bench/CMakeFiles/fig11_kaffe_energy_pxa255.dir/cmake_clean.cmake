file(REMOVE_RECURSE
  "CMakeFiles/fig11_kaffe_energy_pxa255.dir/fig11_kaffe_energy_pxa255.cpp.o"
  "CMakeFiles/fig11_kaffe_energy_pxa255.dir/fig11_kaffe_energy_pxa255.cpp.o.d"
  "fig11_kaffe_energy_pxa255"
  "fig11_kaffe_energy_pxa255.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_kaffe_energy_pxa255.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
