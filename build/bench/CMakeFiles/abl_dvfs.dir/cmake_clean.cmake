file(REMOVE_RECURSE
  "CMakeFiles/abl_dvfs.dir/abl_dvfs.cpp.o"
  "CMakeFiles/abl_dvfs.dir/abl_dvfs.cpp.o.d"
  "abl_dvfs"
  "abl_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
