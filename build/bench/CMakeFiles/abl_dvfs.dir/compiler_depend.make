# Empty compiler generated dependencies file for abl_dvfs.
# This may be replaced when dependencies are built.
