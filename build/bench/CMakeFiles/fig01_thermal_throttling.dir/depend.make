# Empty dependencies file for fig01_thermal_throttling.
# This may be replaced when dependencies are built.
