file(REMOVE_RECURSE
  "CMakeFiles/fig01_thermal_throttling.dir/fig01_thermal_throttling.cpp.o"
  "CMakeFiles/fig01_thermal_throttling.dir/fig01_thermal_throttling.cpp.o.d"
  "fig01_thermal_throttling"
  "fig01_thermal_throttling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_thermal_throttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
