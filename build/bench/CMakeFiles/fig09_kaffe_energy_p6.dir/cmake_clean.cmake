file(REMOVE_RECURSE
  "CMakeFiles/fig09_kaffe_energy_p6.dir/fig09_kaffe_energy_p6.cpp.o"
  "CMakeFiles/fig09_kaffe_energy_p6.dir/fig09_kaffe_energy_p6.cpp.o.d"
  "fig09_kaffe_energy_p6"
  "fig09_kaffe_energy_p6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_kaffe_energy_p6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
