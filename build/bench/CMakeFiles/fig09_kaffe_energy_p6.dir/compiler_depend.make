# Empty compiler generated dependencies file for fig09_kaffe_energy_p6.
# This may be replaced when dependencies are built.
