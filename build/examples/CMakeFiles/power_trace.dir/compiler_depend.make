# Empty compiler generated dependencies file for power_trace.
# This may be replaced when dependencies are built.
