file(REMOVE_RECURSE
  "CMakeFiles/power_trace.dir/power_trace.cpp.o"
  "CMakeFiles/power_trace.dir/power_trace.cpp.o.d"
  "power_trace"
  "power_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
