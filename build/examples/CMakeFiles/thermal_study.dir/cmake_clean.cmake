file(REMOVE_RECURSE
  "CMakeFiles/thermal_study.dir/thermal_study.cpp.o"
  "CMakeFiles/thermal_study.dir/thermal_study.cpp.o.d"
  "thermal_study"
  "thermal_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
