# Empty dependencies file for thermal_study.
# This may be replaced when dependencies are built.
