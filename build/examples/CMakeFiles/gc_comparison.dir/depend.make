# Empty dependencies file for gc_comparison.
# This may be replaced when dependencies are built.
