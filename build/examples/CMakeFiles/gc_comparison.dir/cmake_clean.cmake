file(REMOVE_RECURSE
  "CMakeFiles/gc_comparison.dir/gc_comparison.cpp.o"
  "CMakeFiles/gc_comparison.dir/gc_comparison.cpp.o.d"
  "gc_comparison"
  "gc_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
