file(REMOVE_RECURSE
  "CMakeFiles/embedded_profile.dir/embedded_profile.cpp.o"
  "CMakeFiles/embedded_profile.dir/embedded_profile.cpp.o.d"
  "embedded_profile"
  "embedded_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
