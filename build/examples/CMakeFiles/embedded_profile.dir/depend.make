# Empty dependencies file for embedded_profile.
# This may be replaced when dependencies are built.
